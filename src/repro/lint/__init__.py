"""AST-based determinism & concurrency invariant checker (``repro lint``).

Static enforcement of the contracts the test suite can only sample:
bit-identical engine equivalence, byte-stable canonical-JSON caches and
WALs, RNG-stream-position equality, and the service layer's lock and
supervision discipline.  Thirteen plugin rules (stdlib ``ast`` only — no
new dependencies) walk the source and emit ``path:line:col RULE-ID
message`` findings; a committed baseline lets the gate start green and
ratchet.

Per-module rules see one parsed file; whole-program rules (marked *) run
over the project call graph built by :mod:`repro.lint.callgraph` and can
follow locks, blocking calls and RNG provenance across call edges.

Rules
-----
DET001   wall-clock reads outside the sanctioned timing seams
DET002   global-stream RNG calls instead of a passed Generator
DET003   unstable sorts in order-sensitive paths (the PR 2 bug class)
DET004   non-canonical ``json.dump(s)``
DET005   set-order iteration in engine/metrics paths
DET006 * mixed RNG stream provenance / OS-entropy generator roots
DET007 * spawned child-stream order tied to dict/set iteration
CONC001  unlocked writes to lock-guarded service state
CONC002  bare/broad ``except`` without re-raise or supervisor capture
CONC003 * lock-order inversion across reachable paths
CONC004 * blocking call (wait/join/sleep/IO) while holding a lock
CONC005 * lock-guarded attribute read without the lock
API001   malformed / unknown / unjustified / unused suppressions

Use ``repro lint`` or ``python -m repro.lint`` from the command line, or
:func:`run_lint` programmatically.  ``repro lint --graph DOT|JSON`` dumps
the call/lock graph the whole-program rules reason over.
"""

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    BaselineError,
    baseline_payload,
    load_baseline,
    write_baseline,
)
from repro.lint.base import ImportMap, InvariantRule, ModuleContext, ProjectRule
from repro.lint.callgraph import (
    ModuleSummary,
    ProjectIndex,
    module_name_for,
    summarize_module,
)
from repro.lint.findings import Finding, assign_fingerprints
from repro.lint.runner import (
    ALL_RULES,
    DEFAULT_ROOTS,
    PARSE_RULE_ID,
    RULES_BY_ID,
    LintReport,
    LintUsageError,
    build_arg_parser,
    build_graph,
    list_rules,
    main,
    render_github,
    render_graph,
    render_text,
    run_from_args,
    run_lint,
)
from repro.lint.suppressions import (
    API_RULE_ID,
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

__all__ = [
    "ALL_RULES",
    "API_RULE_ID",
    "BASELINE_SCHEMA",
    "BaselineError",
    "DEFAULT_ROOTS",
    "Finding",
    "ImportMap",
    "InvariantRule",
    "LintReport",
    "LintUsageError",
    "ModuleContext",
    "ModuleSummary",
    "PARSE_RULE_ID",
    "ProjectIndex",
    "ProjectRule",
    "RULES_BY_ID",
    "Suppression",
    "apply_suppressions",
    "assign_fingerprints",
    "baseline_payload",
    "build_arg_parser",
    "build_graph",
    "list_rules",
    "load_baseline",
    "main",
    "module_name_for",
    "parse_suppressions",
    "render_github",
    "render_graph",
    "render_text",
    "run_from_args",
    "run_lint",
    "summarize_module",
    "write_baseline",
]
