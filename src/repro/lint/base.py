"""Plugin base for the repo-specific invariant linter.

Every rule is an :class:`InvariantRule` subclass: a stdlib-``ast`` visitor
that inspects one parsed module and emits :class:`~repro.lint.findings.Finding`
records.  Rules declare *where* they apply as repo-relative path prefixes
(``scope``) and per-rule allowlists (``exclude``) — e.g. the wall-clock rule
covers ``src/repro/`` but exempts ``utils/timer.py``, the one sanctioned
measurement choke point.

The module also hosts the two shared resolution helpers every rule leans on:

* :class:`ImportMap` rebuilds the module's import aliases so a call like
  ``np.random.shuffle(...)`` (or ``from time import perf_counter`` followed
  by a bare ``perf_counter()``) resolves to its canonical dotted path;
* :func:`resolve_call` walks an ``ast.Call``'s function expression into that
  dotted form, returning ``None`` for anything rooted in a non-name
  expression (method calls on locals resolve to their literal spelling).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one scanned file."""

    path: str
    """Repo-relative posix path."""
    source: str
    """Raw file contents."""
    lines: Tuple[str, ...]
    """Source split into lines (1-based access via :meth:`line_text`)."""

    def line_text(self, lineno: int) -> str:
        """Stripped text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class ImportMap:
    """Local name → canonical dotted path, rebuilt from a module's imports."""

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        imports._names[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds only ``numpy``.
                        head = alias.name.split(".", 1)[0]
                        imports._names[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports._names[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, name: str) -> str:
        """Canonical path for a local name (the name itself when not imported)."""
        return self._names.get(name, name)


def resolve_call(func: ast.expr, imports: ImportMap) -> Optional[str]:
    """Dotted path of a call's function expression, or ``None``.

    ``np.random.shuffle`` → ``numpy.random.shuffle`` under ``import numpy as
    np``; a bare ``perf_counter`` → ``time.perf_counter`` under ``from time
    import perf_counter``.  Attribute chains rooted in anything but a plain
    name (``self.rng.choice``, subscripts, calls) return ``None`` — those are
    instance methods, which the determinism rules deliberately trust.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join([imports.resolve(parts[0])] + parts[1:])


#: Constructors whose result is treated as a lock for ``with self._x:``.
#: Shared by the per-module CONC001 rule and the whole-program lock analysis.
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)


def is_lock_factory(resolved: Optional[str]) -> bool:
    """True when a resolved call path constructs a threading lock/condition.

    Both the fully-qualified spelling (``threading.Condition``) and a
    from-imported bare one (``Condition`` → ``threading.Condition``) count.
    """
    if resolved is None:
        return False
    tail = resolved.rpartition(".")[2]
    return resolved in LOCK_FACTORIES or f"threading.{tail}" in LOCK_FACTORIES


def is_set_expression(node: ast.expr) -> bool:
    """True for expressions that are unambiguously ``set``-valued."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` on ``call``, or ``None``."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.expr], value: object) -> bool:
    """True when ``node`` is the literal constant ``value``."""
    return isinstance(node, ast.Constant) and node.value == value


class InvariantRule:
    """Base class every lint rule subclasses.

    Class attributes
    ----------------
    rule_id:
        Stable identifier (``DET001`` ... ``API001``) used in findings,
        suppressions and baselines.
    title:
        One-line summary shown by ``repro lint --list-rules`` and the docs.
    scope:
        Repo-relative posix path prefixes the rule applies to.  Empty means
        every scanned file.
    exclude:
        Path prefixes exempted from the rule (the documented allowlist).
    """

    rule_id: str = ""
    title: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule scans the repo-relative ``path`` at all."""
        if self.scope and not any(path.startswith(prefix) for prefix in self.scope):
            return False
        return not any(path.startswith(prefix) for prefix in self.exclude)

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        """Return this rule's findings for one parsed module."""
        raise NotImplementedError

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=context.path,
            line=lineno,
            col=col,
            rule=self.rule_id,
            message=message,
            text=context.line_text(lineno),
        )


class ProjectRule(InvariantRule):
    """Base class for whole-program rules (CONC003–005, DET006–007).

    A project rule sees the entire scanned tree at once — the
    :class:`~repro.lint.callgraph.ProjectIndex` built from every module's
    summary — instead of one parsed file, so it can reason across call
    edges: lock sets propagated through the call graph, RNG provenance
    through helper returns, reads and writes split across threads.

    ``scope``/``exclude`` still apply, but to the *findings*: the index is
    always built from every scanned file (cross-module propagation must see
    everything), and a rule's findings are dropped when their anchor file
    falls outside its scope.
    """

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        return []  # project rules run in the project phase only

    def check_project(self, index) -> List[Finding]:
        """Return this rule's findings for the whole program.

        ``index`` is a :class:`repro.lint.callgraph.ProjectIndex` (typed
        loosely here to keep :mod:`base` import-cycle-free).
        """
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        text: str = "",
    ) -> Finding:
        """Build a finding anchored at a summary-recorded location."""
        return Finding(
            path=path, line=line, col=col, rule=self.rule_id, message=message, text=text
        )


def walk_assigned_self_attrs(node: ast.AST) -> List[ast.Attribute]:
    """All ``self.<attr>`` targets assigned (plain or augmented) under ``node``."""
    targets: List[ast.Attribute] = []
    for child in ast.walk(node):
        raw: Sequence[ast.expr]
        if isinstance(child, ast.Assign):
            raw = child.targets
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            raw = [child.target]
        else:
            continue
        for target in raw:
            for element in ast.walk(target):
                if (
                    isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"
                ):
                    targets.append(element)
    return targets
