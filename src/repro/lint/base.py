"""Plugin base for the repo-specific invariant linter.

Every rule is an :class:`InvariantRule` subclass: a stdlib-``ast`` visitor
that inspects one parsed module and emits :class:`~repro.lint.findings.Finding`
records.  Rules declare *where* they apply as repo-relative path prefixes
(``scope``) and per-rule allowlists (``exclude``) — e.g. the wall-clock rule
covers ``src/repro/`` but exempts ``utils/timer.py``, the one sanctioned
measurement choke point.

The module also hosts the two shared resolution helpers every rule leans on:

* :class:`ImportMap` rebuilds the module's import aliases so a call like
  ``np.random.shuffle(...)`` (or ``from time import perf_counter`` followed
  by a bare ``perf_counter()``) resolves to its canonical dotted path;
* :func:`resolve_call` walks an ``ast.Call``'s function expression into that
  dotted form, returning ``None`` for anything rooted in a non-name
  expression (method calls on locals resolve to their literal spelling).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one scanned file."""

    path: str
    """Repo-relative posix path."""
    source: str
    """Raw file contents."""
    lines: Tuple[str, ...]
    """Source split into lines (1-based access via :meth:`line_text`)."""

    def line_text(self, lineno: int) -> str:
        """Stripped text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class ImportMap:
    """Local name → canonical dotted path, rebuilt from a module's imports."""

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        imports._names[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds only ``numpy``.
                        head = alias.name.split(".", 1)[0]
                        imports._names[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports._names[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, name: str) -> str:
        """Canonical path for a local name (the name itself when not imported)."""
        return self._names.get(name, name)


def resolve_call(func: ast.expr, imports: ImportMap) -> Optional[str]:
    """Dotted path of a call's function expression, or ``None``.

    ``np.random.shuffle`` → ``numpy.random.shuffle`` under ``import numpy as
    np``; a bare ``perf_counter`` → ``time.perf_counter`` under ``from time
    import perf_counter``.  Attribute chains rooted in anything but a plain
    name (``self.rng.choice``, subscripts, calls) return ``None`` — those are
    instance methods, which the determinism rules deliberately trust.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join([imports.resolve(parts[0])] + parts[1:])


def is_set_expression(node: ast.expr) -> bool:
    """True for expressions that are unambiguously ``set``-valued."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` on ``call``, or ``None``."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.expr], value: object) -> bool:
    """True when ``node`` is the literal constant ``value``."""
    return isinstance(node, ast.Constant) and node.value == value


class InvariantRule:
    """Base class every lint rule subclasses.

    Class attributes
    ----------------
    rule_id:
        Stable identifier (``DET001`` ... ``API001``) used in findings,
        suppressions and baselines.
    title:
        One-line summary shown by ``repro lint --list-rules`` and the docs.
    scope:
        Repo-relative posix path prefixes the rule applies to.  Empty means
        every scanned file.
    exclude:
        Path prefixes exempted from the rule (the documented allowlist).
    """

    rule_id: str = ""
    title: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule scans the repo-relative ``path`` at all."""
        if self.scope and not any(path.startswith(prefix) for prefix in self.scope):
            return False
        return not any(path.startswith(prefix) for prefix in self.exclude)

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        """Return this rule's findings for one parsed module."""
        raise NotImplementedError

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=context.path,
            line=lineno,
            col=col,
            rule=self.rule_id,
            message=message,
            text=context.line_text(lineno),
        )


def walk_assigned_self_attrs(node: ast.AST) -> List[ast.Attribute]:
    """All ``self.<attr>`` targets assigned (plain or augmented) under ``node``."""
    targets: List[ast.Attribute] = []
    for child in ast.walk(node):
        raw: Sequence[ast.expr]
        if isinstance(child, ast.Assign):
            raw = child.targets
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            raw = [child.target]
        else:
            continue
        for target in raw:
            for element in ast.walk(target):
                if (
                    isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"
                ):
                    targets.append(element)
    return targets
