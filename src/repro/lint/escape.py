"""Thread-escape analysis: unlocked *reads* of lock-guarded state.

========  ============================================================
CONC005   lock-guarded attribute read without the lock outside __init__
========  ============================================================

CONC001 polices the write side: within an audited class, any ``self._*``
attribute ever assigned under ``with self.<lock>:`` must always be
written under it.  But the race the service actually exhibited was on the
*read* side — the match-loop thread publishes counters under the state
lock while the HTTP handler (``stats()``/``_build_report()``) reads them
bare, observing torn multi-field snapshots.  CONC005 generalises the same
self-calibrating discipline to loads: in any class that owns a lock, an
attribute written under that lock (outside ``__init__``) is *guarded*,
and every lockless read of it from a non-``__init__`` method is a
finding.

Mechanics: the guarded set and the read sites both come straight from the
per-function summaries (:class:`~repro.lint.callgraph.AttrAccess` records
carry the ``locked`` flag), so the pass is a pure join over the project
index — no second AST walk.  Lock attributes themselves and condition
aliases are exempt (reading ``self._lock`` to pass it around is not a
data race), as are reads in ``__init__`` (construction happens-before
every other thread).  Deliberate lock-free fast paths stay possible via
``# repro-lint: disable=CONC005 -- <why the race is benign>``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lint.base import ProjectRule
from repro.lint.callgraph import ClassSummary, ProjectIndex
from repro.lint.findings import Finding

__all__ = ["ThreadEscapeRule"]


class ThreadEscapeRule(ProjectRule):
    """CONC005 — unlocked read of a lock-guarded attribute."""

    rule_id = "CONC005"
    title = "lock-guarded self._attr read without the lock"
    scope = ("src/repro/service/", "src/repro/sweep/", "src/repro/fuzz/")

    def check_project(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for dotted in sorted(index.classes):
            cls = index.classes[dotted]
            if not cls.lock_attrs or not self.applies_to(cls.path):
                continue
            guarded = self._guarded_attrs(index, cls)
            if not guarded:
                continue
            seen: Set[Tuple[int, str]] = set()
            methods = [
                fn
                for fn in index.functions.values()
                if fn.module == cls.module and fn.class_name == cls.name
            ]
            for fn in sorted(methods, key=lambda f: f.line):
                if fn.name == "__init__":
                    continue
                for access in fn.attr_accesses:
                    if (
                        access.kind != "read"
                        or access.locked
                        or access.attr not in guarded
                    ):
                        continue
                    key = (access.line, access.attr)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        self.project_finding(
                            cls.path,
                            access.line,
                            access.col,
                            f"{cls.name}.{access.attr} is written under a lock "
                            "by another thread but read here without it; the "
                            "read can observe a torn/stale snapshot — take the "
                            "lock or suppress with a justification",
                            text=access.text,
                        )
                    )
        return findings

    @staticmethod
    def _guarded_attrs(index: ProjectIndex, cls: ClassSummary) -> Set[str]:
        """Attributes written while locked in any non-``__init__`` method."""
        exempt = set(cls.lock_attrs) | {alias for alias, _ in cls.lock_aliases}
        guarded: Set[str] = set()
        for fn in index.functions.values():
            if fn.module != cls.module or fn.class_name != cls.name:
                continue
            if fn.name == "__init__":
                continue
            for access in fn.attr_accesses:
                if access.kind == "write" and access.locked:
                    if access.attr not in exempt:
                        guarded.add(access.attr)
        return guarded
