"""Determinism rules: wall-clock, global RNG, unstable sorts, JSON, sets.

These encode the invariants every equivalence/replay contract in this repo
depends on — bit-identical engine runs, byte-stable canonical-JSON caches and
WALs, RNG-stream-position equality — as static checks:

========  ============================================================
DET001    wall-clock reads outside the sanctioned measurement seams
DET002    module-level (global-stream) RNG calls instead of a Generator
DET003    unstable sorts in the dispatch/service/sweep/fuzz paths
DET004    non-canonical ``json.dump(s)`` outside the canonical helpers
DET005    iteration over ``set``-valued expressions in engine paths
========  ============================================================

Three of the rules are literal regression guards: DET003 is the PR 2
``np.argsort`` tie-breaking bug class, DET002 the PR 4 global-stream RNG
coupling class, DET004 the cache/WAL byte-stability contract PR 5 hardened.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.base import (
    ImportMap,
    InvariantRule,
    ModuleContext,
    is_constant,
    is_set_expression,
    keyword_arg,
    resolve_call,
)
from repro.lint.findings import Finding

#: Functions whose return value is the wall clock (reads, not sleeps).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are *not* global-stream draws.
_NUMPY_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Module-level functions of stdlib ``random`` that touch the global stream.
_STDLIB_RANDOM_GLOBAL = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


class WallClockRule(InvariantRule):
    """DET001 — wall-clock reads in deterministic code.

    The simulation, cache and WAL layers must be wall-clock-free so live
    runs replay offline bit-identically.  Timing belongs to the sanctioned
    seams only: :mod:`repro.utils.timer` (which exports
    :func:`~repro.utils.timer.wall_clock`, the one blessed read used by
    suite/latency measurements) and the service front end's metrics section
    in ``service/server.py``.  Benchmarks, examples and tests are outside
    the rule's scope — wall timing is their deliverable.
    """

    rule_id = "DET001"
    title = "wall-clock read outside the sanctioned timing seams"
    scope = ("src/repro/",)
    exclude = ("src/repro/utils/timer.py", "src/repro/service/server.py")

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved in WALL_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"wall-clock read {resolved}() in deterministic code; "
                        "route timing through repro.utils.timer.wall_clock() "
                        "or suppress with a justification",
                    )
                )
        return findings


class GlobalRngRule(InvariantRule):
    """DET002 — module-level RNG draws instead of a passed ``Generator``.

    A ``np.random.<fn>()`` or ``random.<fn>()`` call mutates an ambient
    global stream: any other consumer of that stream shifts position, which
    is exactly the PR 4 coupling bug (a ``max_train_samples`` change moved
    every downstream draw).  Seeded ``np.random.default_rng(...)`` /
    ``random.Random(...)`` instances are the sanctioned alternative.
    """

    rule_id = "DET002"
    title = "global-stream RNG call instead of a passed Generator"

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved is None or "." not in resolved:
                continue
            head, _, fn = resolved.rpartition(".")
            if head == "numpy.random" and fn not in _NUMPY_RANDOM_SAFE:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"global numpy RNG call {resolved}(); draw from a "
                        "seeded np.random.default_rng(...) Generator instead",
                    )
                )
            elif head == "random" and fn in _STDLIB_RANDOM_GLOBAL:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"global stdlib RNG call {resolved}(); use a seeded "
                        "random.Random(...) instance instead",
                    )
                )
        return findings


class UnstableSortRule(InvariantRule):
    """DET003 — unstable sorts where tie order is load-bearing.

    NumPy's default introsort leaves the relative order of equal keys
    unspecified — the PR 2 greedy-matching bug: exact candidate-distance
    ties *do* occur at fleet scale and silently broke engine equality and
    cache byte-stability.  Every ``np.sort``/``np.argsort`` (and any
    ``.argsort(...)`` method call) in the dispatch, service, sweep and fuzz
    paths must pin ``kind="stable"``.

    Python's builtin ``sorted`` is stable *by spec*, so it is flagged only
    when its input is itself unordered — a ``set``-valued expression sorted
    with a ``key=``, where equal keys keep the set's arbitrary order.
    """

    rule_id = "DET003"
    title = "unstable sort in an order-sensitive path"
    scope = (
        "src/repro/dispatch/",
        "src/repro/service/",
        "src/repro/sweep/",
        "src/repro/fuzz/",
    )

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved in ("numpy.sort", "numpy.argsort"):
                if not is_constant(keyword_arg(node, "kind"), "stable"):
                    findings.append(
                        self.finding(
                            context,
                            node,
                            f"{resolved}() without kind=\"stable\"; introsort "
                            "tie order is unspecified (the PR 2 bug class)",
                        )
                    )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "argsort":
                # A method-call ``x.argsort(...)`` is ndarray-only (lists have
                # no argsort), so the stable-kind requirement applies.
                if not is_constant(keyword_arg(node, "kind"), "stable"):
                    findings.append(
                        self.finding(
                            context,
                            node,
                            '.argsort() without kind="stable"; introsort tie '
                            "order is unspecified (the PR 2 bug class)",
                        )
                    )
            elif resolved == "sorted" and node.args:
                if keyword_arg(node, "key") is not None and is_set_expression(node.args[0]):
                    findings.append(
                        self.finding(
                            context,
                            node,
                            "sorted(<set>, key=...) keeps the set's arbitrary "
                            "order on key ties; sort a deterministic sequence "
                            "or drop the key",
                        )
                    )
        return findings


class CanonicalJsonRule(InvariantRule):
    """DET004 — ``json.dump(s)`` that is not byte-stable.

    Every JSON byte this repo persists or compares — cache entries, ingest
    WALs, campaign reports, benchmark payloads — must be reproducible:
    ``sort_keys=True`` plus an explicit layout (``separators=`` or
    ``indent=``).  :func:`repro.utils.cache.canonical_json` is the blessed
    compact encoder; ``utils/cache.py`` itself is the only file allowed to
    spell the raw incantation.
    """

    rule_id = "DET004"
    title = "non-canonical json.dump(s)"
    exclude = ("src/repro/utils/cache.py",)

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved not in ("json.dump", "json.dumps"):
                continue
            sorts = is_constant(keyword_arg(node, "sort_keys"), True)
            layout = (
                keyword_arg(node, "separators") is not None
                or keyword_arg(node, "indent") is not None
            )
            if not (sorts and layout):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"{resolved}() without sort_keys=True and an explicit "
                        "layout; use repro.utils.cache.canonical_json() (or "
                        "pass sort_keys=True plus separators=/indent=)",
                    )
                )
        return findings


class SetIterationRule(InvariantRule):
    """DET005 — iterating a ``set`` where order reaches the results.

    Set iteration order depends on insertion history and (for str keys) hash
    randomisation; in the engine and metrics paths that order leaks straight
    into matching, draws or serialised output.  ``sorted(<set>)`` (without a
    key) is the sanctioned consumer — it imposes a total order — and
    membership tests are untouched.
    """

    rule_id = "DET005"
    title = "set-order iteration in an engine/metrics path"
    scope = ("src/repro/dispatch/", "src/repro/service/")

    _CONSUMERS = ("list", "tuple", "enumerate")

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        message = (
            "iteration over a set is order-unstable; wrap it in sorted(...) "
            "before it reaches engine state or output"
        )
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expression(node.iter):
                findings.append(self.finding(context, node.iter, message))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for generator in node.generators:
                    if is_set_expression(generator.iter):
                        findings.append(self.finding(context, generator.iter, message))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._CONSUMERS
                and node.args
                and is_set_expression(node.args[0])
            ):
                findings.append(self.finding(context, node.args[0], message))
        return findings
