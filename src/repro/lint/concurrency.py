"""Concurrency rules: unlocked shared-state writes and swallowed exceptions.

========  ============================================================
CONC001   writes to lock-guarded ``self._*`` attributes outside the lock
CONC002   bare/broad ``except`` without re-raise or supervisor capture
========  ============================================================

CONC001 is self-calibrating per class rather than annotation-driven: within
each audited class (the service's concurrency-bearing ones), any ``self._*``
attribute that is *ever* assigned inside a ``with self.<lock>:`` block is
considered lock-guarded, and every other assignment to it — outside a lock
block, in any method but ``__init__`` — is a finding.  That mirrors how the
code is actually written: the match loop and the admission path both take
their locks around the mutations they share, so an unlocked write to the
same attribute is either a new race or needs an explicit justification.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.lint.base import (
    ImportMap,
    InvariantRule,
    ModuleContext,
    is_lock_factory,
    resolve_call,
)
from repro.lint.findings import Finding

#: Exception types considered "broad" for CONC002.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Container methods that mutate their receiver in place — a
#: ``self._queue.append(...)`` is a shared-state write just like an
#: assignment, for both the guarded-set collection and the detection pass.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


def _self_attr(node: ast.expr) -> str:
    """``attr`` when ``node`` is ``self.<attr>``, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _assigned_self_attrs(stmt: ast.stmt) -> List[Tuple[str, ast.AST]]:
    """``(attr, anchor)`` for every ``self._*`` mutated by one statement.

    Covers rebinds (``self._x = ...``), augmented assignment, subscript
    stores (``self._x[i] = ...`` mutates the shared object just the same)
    and deletions — both ``del self._x`` and ``del self._x[i]`` remove
    shared state exactly like an assignment writes it.
    """
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    else:
        return []
    out: List[Tuple[str, ast.AST]] = []
    for target in targets:
        for element in ast.walk(target):
            attr = _self_attr(element)
            if attr.startswith("_"):
                out.append((attr, element))
    return out


def _mutated_self_attrs(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """All ``self._*`` writes performed directly by ``node``.

    Node-local on purpose: :meth:`UnlockedSharedStateRule._scan` visits every
    node, so nested mutations are found when recursion reaches them.
    """
    out = _assigned_self_attrs(node) if isinstance(node, ast.stmt) else []
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
    ):
        attr = _self_attr(node.func.value)
        if attr.startswith("_"):
            out.append((attr, node))
    return out


class UnlockedSharedStateRule(InvariantRule):
    """CONC001 — unlocked writes to lock-guarded service state."""

    rule_id = "CONC001"
    title = "write to a lock-guarded self._attr outside the lock"
    #: Concurrency-bearing classes under audit (shared by client threads,
    #: the HTTP pool and the match loop).
    audited_classes = ("AdmissionScheduler", "DispatchService")

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name in self.audited_classes:
                findings.extend(self._check_class(node, context, imports))
        return findings

    # -------------------------------------------------------------- #

    def _check_class(
        self, cls: ast.ClassDef, context: ModuleContext, imports: ImportMap
    ) -> List[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attributes(methods, imports)
        if not lock_attrs:
            return []
        guarded: Set[str] = set()
        for method in methods:
            if method.name != "__init__":
                self._scan(method, lock_attrs, in_lock=False, guarded=guarded, sink=None)
        if not guarded:
            return []
        findings: List[Finding] = []
        for method in methods:
            if method.name == "__init__":
                # Construction happens-before every thread that can observe
                # the object; unlocked writes there are fine.
                continue
            sink: List[Tuple[str, ast.AST]] = []
            self._scan(method, lock_attrs, in_lock=False, guarded=guarded, sink=sink)
            for attr, anchor in sink:
                findings.append(
                    self.finding(
                        context,
                        anchor,
                        f"{cls.name}.{attr} is written under "
                        f"`with self.{sorted(lock_attrs)[0]}` elsewhere but "
                        "mutated here without the lock; take the lock or "
                        "suppress with a justification",
                    )
                )
        return findings

    def _lock_attributes(self, methods: List[ast.FunctionDef], imports: ImportMap) -> Set[str]:
        """``self._x`` attributes bound to a threading lock/condition."""
        locks: Set[str] = set()
        init = next((m for m in methods if m.name == "__init__"), None)
        if init is None:
            return locks
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            resolved = resolve_call(stmt.value.func, imports)
            # Both ``threading.Condition(...)`` and a from-imported bare
            # ``Condition(...)`` count as lock constructors.
            if is_lock_factory(resolved):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr:
                        locks.add(attr)
        return locks

    def _scan(
        self,
        node: ast.AST,
        lock_attrs: Set[str],
        in_lock: bool,
        guarded: Set[str],
        sink,
    ) -> None:
        """One recursive pass serving both collection and detection.

        With ``sink=None`` it *collects*: attributes assigned while a lock is
        held join ``guarded``.  With a sink list it *detects*: assignments to
        guarded attributes outside any lock block are appended.
        """
        for child in ast.iter_child_nodes(node):
            child_in_lock = in_lock
            if isinstance(child, (ast.With, ast.AsyncWith)):
                holds = any(
                    _self_attr(item.context_expr) in lock_attrs
                    for item in child.items
                )
                child_in_lock = in_lock or holds
            for attr, anchor in _mutated_self_attrs(child):
                if attr in lock_attrs:
                    continue
                if child_in_lock:
                    if sink is None:
                        guarded.add(attr)
                elif sink is not None and attr in guarded:
                    sink.append((attr, anchor))
            self._scan(child, lock_attrs, child_in_lock, guarded, sink)


class SwallowedExceptionRule(InvariantRule):
    """CONC002 — broad ``except`` that neither re-raises nor supervises.

    In the service layer a silently swallowed exception is a dead match
    loop that looks healthy — the exact failure mode the PR 8 supervisor
    exists to prevent.  A broad handler must either ``raise`` (possibly a
    translated error) or capture the failure for the supervisor
    (``traceback.format_exc()`` reaching the health state machine).
    """

    rule_id = "CONC002"
    title = "bare/broad except without re-raise or supervisor capture"
    scope = ("src/repro/service/",)

    def check(self, tree: ast.AST, context: ModuleContext) -> List[Finding]:
        imports = ImportMap.from_tree(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles(node, imports):
                continue
            findings.append(
                self.finding(
                    context,
                    node,
                    "broad except swallows the failure; narrow the exception, "
                    "re-raise, or capture it for the supervisor "
                    "(traceback.format_exc() into the failure record)",
                )
            )
        return findings

    @staticmethod
    def _is_broad(type_node) -> bool:
        if type_node is None:
            return True
        names: List[ast.expr] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS:
                return True
        return False

    @staticmethod
    def _handles(handler: ast.ExceptHandler, imports: ImportMap) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                resolved = resolve_call(node.func, imports)
                if resolved == "traceback.format_exc" or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "format_exc"
                ):
                    return True
        return False
