"""Upper-bound evaluation of the real error (Algorithm 3).

``UpperBound(n, N, X, Model)`` trains the prediction model at MGrid resolution
``sqrt(n)``, estimates the total model error as ``n * MAE`` (Equation 20),
computes the analytic total expression error from the HGrid alphas
(Algorithm 2 / its equivalents in :mod:`repro.core.expression`) and returns
their sum ``e(sqrt(n))``.  :class:`UpperBoundEvaluator` wraps this with a cache
so the search algorithms never retrain a model for the same ``n`` twice.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, MutableMapping, Optional, Sequence, Tuple

from repro.core.expression import ExpressionMethod, total_expression_error
from repro.core.grid import GridLayout
from repro.core.interfaces import (
    DaySlot,
    DemandPredictor,
    actual_counts_for_targets,
    evaluation_targets,
)
from repro.core.model_error import mean_absolute_error, total_model_error_from_mae
from repro.data.dataset import EventDataset
from repro.utils.timer import Timer
from repro.utils.validation import ensure_perfect_square


@dataclass(frozen=True)
class UpperBoundResult:
    """Breakdown of ``e(sqrt(n))`` for one candidate ``n``."""

    num_mgrids: int
    hgrids_per_mgrid: int
    model_error: float
    expression_error: float
    mae: float

    @property
    def mgrid_side(self) -> int:
        """``sqrt(n)``."""
        return int(round(self.num_mgrids**0.5))

    @property
    def total(self) -> float:
        """``e(sqrt(n))`` — the upper bound on the total real error."""
        return self.model_error + self.expression_error


@dataclass
class UpperBoundEvaluator:
    """Cached evaluator of the real-error upper bound over candidate grid sizes.

    Parameters
    ----------
    dataset:
        The event dataset (train/val/test split included).
    model_factory:
        Callable returning a *fresh* predictor; called once per evaluated ``n``.
    hgrid_budget:
        ``N`` — the total number of HGrids (perfect square).
    alpha_slot:
        Time slot whose per-HGrid mean is used for the expression error
        (the paper defaults to 08:00-08:30).
    evaluation_days:
        Days whose slots are used to measure the model MAE; defaults to the
        dataset's validation + test days.
    expression_method, expression_k:
        Passed through to :func:`repro.core.expression.total_expression_error`.
    model_error_cache:
        Optional mapping ``mgrid_side -> (model_error, mae)`` shared between
        evaluators.  The model error depends only on the dataset, the model
        and the side — not on ``alpha_slot`` — so evaluators that differ only
        in their alpha slot (e.g. the per-slot tuners in
        :mod:`repro.core.slotwise`) can share one cache and train each model
        once instead of once per slot.  Requires a deterministic
        ``model_factory``.  If the mapping additionally provides a
        ``lock_for(side)`` method returning a context manager (see
        :class:`repro.sweep.runner.SingleFlightModelErrorCache`), the
        evaluator holds that lock around training so concurrent evaluators
        sharing the cache train each side exactly once.
    """

    dataset: EventDataset
    model_factory: Callable[[], DemandPredictor]
    hgrid_budget: int
    alpha_slot: int = 16
    evaluation_days: Optional[Sequence[int]] = None
    expression_method: ExpressionMethod = "auto"
    expression_k: Optional[int] = None
    model_error_cache: Optional[MutableMapping[int, Tuple[float, float]]] = None
    timer: Timer = field(default_factory=Timer)

    def __post_init__(self) -> None:
        ensure_perfect_square(self.hgrid_budget, "hgrid_budget")
        if not 0 <= self.alpha_slot < self.dataset.slots_per_day:
            raise ValueError(
                f"alpha_slot must be in [0, {self.dataset.slots_per_day}), "
                f"got {self.alpha_slot}"
            )
        if self.evaluation_days is None:
            self.evaluation_days = tuple(self.dataset.split.val_days) + tuple(
                self.dataset.split.test_days
            )
        self._cache: Dict[int, UpperBoundResult] = {}
        self._evaluation_count = 0

    @property
    def evaluations(self) -> int:
        """Number of distinct ``n`` values evaluated so far (cache misses)."""
        return self._evaluation_count

    def cached_results(self) -> Dict[int, UpperBoundResult]:
        """Mapping ``sqrt(n) -> UpperBoundResult`` of everything evaluated so far."""
        return dict(self._cache)

    def evaluate_side(self, mgrid_side: int) -> UpperBoundResult:
        """Evaluate ``e(side)`` for ``n = side**2`` (cached)."""
        mgrid_side = int(mgrid_side)
        if mgrid_side <= 0:
            raise ValueError(f"mgrid_side must be positive, got {mgrid_side}")
        if mgrid_side in self._cache:
            return self._cache[mgrid_side]
        with self.timer.measure("upper_bound_evaluation"):
            result = self._evaluate(mgrid_side)
        self._cache[mgrid_side] = result
        self._evaluation_count += 1
        return result

    def evaluate(self, num_mgrids: int) -> UpperBoundResult:
        """Evaluate ``e(sqrt(n))`` for a perfect-square ``n`` (cached)."""
        n = ensure_perfect_square(num_mgrids, "num_mgrids")
        return self.evaluate_side(int(round(n**0.5)))

    def __call__(self, mgrid_side: int) -> float:
        """Shorthand used by the search algorithms: ``e(side)``."""
        return self.evaluate_side(mgrid_side).total

    # ------------------------------------------------------------------ #

    def _evaluate(self, mgrid_side: int) -> UpperBoundResult:
        layout = GridLayout.for_ogss(mgrid_side * mgrid_side, self.hgrid_budget)
        model_error, mae = self._model_error(mgrid_side)
        expression = self._expression_error(layout)
        return UpperBoundResult(
            num_mgrids=layout.num_mgrids,
            hgrids_per_mgrid=layout.hgrids_per_mgrid,
            model_error=model_error,
            expression_error=expression,
            mae=mae,
        )

    def _model_error(self, mgrid_side: int) -> tuple[float, float]:
        """Cached-and-locked wrapper around :meth:`_train_and_measure`."""
        cache = self.model_error_cache
        if cache is None:
            return self._train_and_measure(mgrid_side)
        lock_for = getattr(cache, "lock_for", None)
        guard = lock_for(mgrid_side) if lock_for is not None else nullcontext()
        with guard:
            if mgrid_side in cache:
                return cache[mgrid_side]
            entry = self._train_and_measure(mgrid_side)
            cache[mgrid_side] = entry
            return entry

    def _train_and_measure(self, mgrid_side: int) -> tuple[float, float]:
        """Train a fresh model at this resolution and estimate ``n * MAE``."""
        model = self.model_factory()
        with self.timer.measure("model_training"):
            model.fit(self.dataset, mgrid_side)
        targets: list[DaySlot] = evaluation_targets(self.dataset, self.evaluation_days)
        predictions = model.predict(self.dataset, mgrid_side, targets)
        actual = actual_counts_for_targets(self.dataset, mgrid_side, targets)
        mae = mean_absolute_error(predictions, actual)
        return total_model_error_from_mae(mae, mgrid_side * mgrid_side), mae

    def _expression_error(self, layout: GridLayout) -> float:
        """Analytic total expression error for this layout."""
        alpha_fine = self.dataset.alpha(layout.fine_resolution, slot=self.alpha_slot)
        with self.timer.measure("expression_error"):
            return total_expression_error(
                alpha_fine,
                layout,
                k=self.expression_k,
                method=self.expression_method,
            )
