"""Expression-error calculators (Section III-B of the paper).

For a homogeneous grid (HGrid) ``r_ij`` with Poisson mean ``alpha_ij`` inside a
model grid (MGrid) of ``m`` HGrids, the expression error is

    E_e(i, j) = E | lambda_ij - (lambda_ij + lambda_{i,!=j}) / m |
              = E | ((m - 1) * lambda_ij - lambda_{i,!=j}) / m |

where ``lambda_ij ~ Poisson(alpha_ij)`` and ``lambda_{i,!=j} ~ Poisson(beta)``
with ``beta = sum_{g != j} alpha_ig`` are independent (Equation 7).

This module provides several calculators that trade speed for fidelity:

* :func:`expression_error_reference` — dense truncated double sum (the direct
  evaluation of Equation 7), vectorised with NumPy; the ground truth the other
  implementations are validated against.
* :func:`expression_error_algorithm1` — a line-by-line transliteration of the
  paper's Algorithm 1 (running-product updates, O(m K^2) scalar work).  Kept
  for the Figure 16 cost comparison.
* :func:`expression_error_algorithm2` — the O(m K) fast calculator.  Instead of
  transcribing the paper's index bookkeeping it uses the mathematically
  equivalent prefix-sum identity
  ``E|c - Y| = c (2 F_Y(c) - 1) - 2 S_Y(c) + E[Y]`` with
  ``F_Y(c) = P(Y <= c)`` and ``S_Y(c) = E[Y 1{Y <= c}]``, which needs a single
  O(m K) pass over the truncated support of ``Y``.
* :func:`expression_error_gaussian` — O(1) Normal approximation, accurate for
  moderately large means; enables full-city sweeps in milliseconds.
* :func:`expression_error_monte_carlo` — sampling estimate for property tests.

Aggregate helpers (:func:`mgrid_expression_error`,
:func:`total_expression_error`) sum the per-HGrid errors over an MGrid or over
a whole city at a given :class:`~repro.core.grid.GridLayout`.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np
from scipy import stats

from repro.core.grid import GridLayout
from repro.utils.poisson import poisson_pmf, truncated_poisson_support
from repro.utils.rng import RandomState, default_rng
from repro.utils.validation import ensure_non_negative, ensure_positive

ExpressionMethod = Literal["auto", "exact", "algorithm1", "algorithm2", "gaussian", "reference"]

#: Default truncation hyper-parameter K (the paper uses 250; smaller values are
#: adequate for the laptop-scale alphas used in tests and benches).
DEFAULT_K = 120

#: Mean above which the Gaussian approximation is considered accurate enough
#: for "auto" mode (relative error well below 1% in validation tests).
_GAUSSIAN_MEAN_THRESHOLD = 25.0


def _validate_inputs(alpha_ij: float, alpha_rest: float, m: int, k: int) -> None:
    ensure_non_negative(alpha_ij, "alpha_ij")
    ensure_non_negative(alpha_rest, "alpha_rest")
    ensure_positive(m, "m")
    ensure_positive(k, "K")


def expression_error_reference(
    alpha_ij: float, alpha_rest: float, m: int, k: int = DEFAULT_K
) -> float:
    """Direct truncated evaluation of Equation 7 (dense double sum).

    ``alpha_rest`` is ``sum_{g != j} alpha_ig``.  The double sum runs over
    ``kh in [0, K]`` and ``km in [0, (m - 1) K]`` as in Theorem III.2.
    """
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    kh = np.arange(0, k + 1)
    km = np.arange(0, (m - 1) * k + 1)
    pmf_h = poisson_pmf(kh, alpha_ij)
    pmf_m = poisson_pmf(km, alpha_rest)
    deviation = np.abs((m - 1) * kh[:, None] - km[None, :]) / m
    return float(np.sum(deviation * pmf_h[:, None] * pmf_m[None, :]))


def expression_error_algorithm1(
    alpha_ij: float, alpha_rest: float, m: int, k: int = DEFAULT_K
) -> float:
    """Paper Algorithm 1: running-product evaluation of the truncated series.

    Complexity O(m K^2) in scalar operations.  Retained for the Figure 16
    runtime comparison and as an independent implementation for cross-checks.
    """
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    total = 0.0
    # p1 tracks e^{-alpha_ij} alpha_ij^{kh} / kh!.
    p1 = math.exp(-alpha_ij)
    for kh in range(0, k + 1):
        # p2 tracks e^{-alpha_rest} alpha_rest^{km} / km!.
        p2 = math.exp(-alpha_rest)
        for km in range(0, (m - 1) * k + 1):
            delta = abs((m - 1) * kh - km) / m
            total += delta * p1 * p2
            p2 = p2 * alpha_rest / (km + 1)
        p1 = p1 * alpha_ij / (kh + 1)
    return total


def expression_error_algorithm2(
    alpha_ij: float, alpha_rest: float, m: int, k: int = DEFAULT_K
) -> float:
    """Fast O(m K) expression-error calculator (paper Algorithm 2 equivalent).

    Uses prefix sums of the Poisson pmf of ``Y = lambda_{i,!=j}`` truncated at
    ``(m - 1) K``:

        E|c - Y| = c * (2 F(c) - 1) - 2 S(c) + E_trunc[Y]

    evaluated at ``c = (m - 1) kh`` for every ``kh``, then averaged over the
    truncated Poisson pmf of ``lambda_ij`` and divided by ``m``.
    """
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    km = np.arange(0, (m - 1) * k + 1)
    pmf_rest = poisson_pmf(km, alpha_rest)
    cdf_rest = np.cumsum(pmf_rest)
    partial_mean = np.cumsum(km * pmf_rest)
    truncated_mean = partial_mean[-1]

    kh = np.arange(0, k + 1)
    pmf_h = poisson_pmf(kh, alpha_ij)
    c = (m - 1) * kh
    c = np.minimum(c, km[-1])
    expected_abs = c * (2.0 * cdf_rest[c] - cdf_rest[-1]) - 2.0 * partial_mean[c] + truncated_mean
    return float(np.sum(pmf_h * expected_abs) / m)


def expression_error_gaussian(
    alpha_ij: float, alpha_rest: float, m: int
) -> float:
    """Normal approximation of the expression error (O(1)).

    ``D = (m - 1) lambda_ij - lambda_{i,!=j}`` has mean
    ``mu = (m - 1) alpha_ij - alpha_rest`` and variance
    ``sigma^2 = (m - 1)^2 alpha_ij + alpha_rest``.  Approximating ``D`` as
    Normal, ``E|D| = sigma sqrt(2/pi) exp(-mu^2 / 2 sigma^2)
    + mu (1 - 2 Phi(-mu / sigma))``.
    """
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    if m == 1:
        return 0.0
    mu = (m - 1) * alpha_ij - alpha_rest
    variance = (m - 1) ** 2 * alpha_ij + alpha_rest
    if variance <= 0:
        return abs(mu) / m
    sigma = math.sqrt(variance)
    expected_abs = sigma * math.sqrt(2.0 / math.pi) * math.exp(
        -(mu**2) / (2.0 * variance)
    ) + mu * (1.0 - 2.0 * stats.norm.cdf(-mu / sigma))
    return float(expected_abs / m)


def expression_error_monte_carlo(
    alpha_ij: float,
    alpha_rest: float,
    m: int,
    samples: int = 200_000,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of the expression error (used in property tests)."""
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    ensure_positive(samples, "samples")
    if m == 1:
        return 0.0
    rng = default_rng(seed)
    lam_h = rng.poisson(alpha_ij, size=samples)
    lam_rest = rng.poisson(alpha_rest, size=samples)
    deviations = np.abs((m - 1) * lam_h - lam_rest) / m
    return float(deviations.mean())


def expression_error_upper_bound(alpha_ij: float, alpha_rest: float, m: int) -> float:
    """Analytic upper bound from Lemma III.1: ``(1 - 2/m) alpha_ij + sum_k alpha_ik / m``."""
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    total_alpha = alpha_ij + alpha_rest
    return (1.0 - 2.0 / m) * alpha_ij + total_alpha / m


def default_k_for(alpha_ij: float, alpha_rest: float, m: int) -> int:
    """Truncation parameter large enough to cover both Poisson tails.

    Keeps the truncated series within ~1e-6 of the untruncated value for the
    alphas encountered in practice while avoiding a needlessly large K for
    small means.
    """
    k_h = truncated_poisson_support(alpha_ij, coverage=1.0 - 1e-8)
    k_rest = truncated_poisson_support(alpha_rest, coverage=1.0 - 1e-8)
    if m > 1:
        k_rest = math.ceil(k_rest / (m - 1))
    return max(8, k_h, k_rest)


def expression_error(
    alpha_ij: float,
    alpha_rest: float,
    m: int,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Expression error of one HGrid, dispatching on ``method``.

    ``method="auto"`` uses the Gaussian approximation when the MGrid mean is
    large (where it is essentially exact) and the exact O(mK) calculator
    otherwise.
    """
    if method == "gaussian":
        return expression_error_gaussian(alpha_ij, alpha_rest, m)
    if k is None:
        k = default_k_for(alpha_ij, alpha_rest, m)
    if method == "reference":
        return expression_error_reference(alpha_ij, alpha_rest, m, k)
    if method == "algorithm1":
        return expression_error_algorithm1(alpha_ij, alpha_rest, m, k)
    if method in ("algorithm2", "exact"):
        return expression_error_algorithm2(alpha_ij, alpha_rest, m, k)
    if method == "auto":
        total = alpha_ij + alpha_rest
        if total >= _GAUSSIAN_MEAN_THRESHOLD:
            return expression_error_gaussian(alpha_ij, alpha_rest, m)
        return expression_error_algorithm2(alpha_ij, alpha_rest, m, k)
    raise ValueError(f"unknown expression-error method {method!r}")


def mgrid_expression_error(
    alphas: np.ndarray,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Total expression error of one MGrid given the alphas of its ``m`` HGrids."""
    alphas = np.asarray(alphas, dtype=float).ravel()
    if alphas.size == 0:
        raise ValueError("an MGrid must contain at least one HGrid")
    if np.any(alphas < 0):
        raise ValueError("all alphas must be non-negative")
    m = alphas.size
    if m == 1:
        return 0.0
    total_alpha = float(alphas.sum())
    if method == "auto" and total_alpha >= _GAUSSIAN_MEAN_THRESHOLD:
        return _mgrid_expression_error_gaussian(alphas)
    if method == "gaussian":
        return _mgrid_expression_error_gaussian(alphas)
    result = 0.0
    for alpha_ij in alphas:
        rest = total_alpha - float(alpha_ij)
        result += expression_error(float(alpha_ij), rest, m, k=k, method=method)
    return result


def _mgrid_expression_error_gaussian(alphas: np.ndarray) -> float:
    """Vectorised Gaussian-approximation total over one MGrid."""
    m = alphas.size
    total_alpha = alphas.sum()
    rest = total_alpha - alphas
    mu = (m - 1) * alphas - rest
    variance = (m - 1) ** 2 * alphas + rest
    sigma = np.sqrt(np.maximum(variance, 1e-300))
    expected_abs = sigma * math.sqrt(2.0 / math.pi) * np.exp(
        -(mu**2) / (2.0 * np.maximum(variance, 1e-300))
    ) + mu * (1.0 - 2.0 * stats.norm.cdf(-mu / sigma))
    expected_abs = np.where(variance <= 0, np.abs(mu), expected_abs)
    return float(expected_abs.sum() / m)


def total_expression_error(
    alpha_fine: np.ndarray,
    layout: GridLayout,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Summed expression error of all HGrids in the city for a given layout.

    Parameters
    ----------
    alpha_fine:
        Per-HGrid Poisson means on the layout's fine lattice, shape
        ``(fine_resolution, fine_resolution)``.
    layout:
        The MGrid/HGrid layout under evaluation.
    k, method:
        Passed to the per-MGrid calculators.
    """
    blocks = layout.mgrid_alpha_blocks(alpha_fine)
    if layout.hgrids_per_mgrid == 1:
        return 0.0
    if method in ("auto", "gaussian"):
        gaussian_total = _total_expression_error_gaussian(blocks)
        if method == "gaussian":
            return gaussian_total
        # In auto mode, recompute exactly only the MGrids with small means.
        small = blocks.sum(axis=1) < _GAUSSIAN_MEAN_THRESHOLD
        if not np.any(small):
            return gaussian_total
        total = _total_expression_error_gaussian(blocks[~small]) if np.any(~small) else 0.0
        for row in blocks[small]:
            total += mgrid_expression_error(row, k=k, method="algorithm2")
        return total
    return float(
        sum(mgrid_expression_error(row, k=k, method=method) for row in blocks)
    )


def _total_expression_error_gaussian(blocks: np.ndarray) -> float:
    """Vectorised Gaussian-approximation total over many MGrids at once."""
    if blocks.size == 0:
        return 0.0
    m = blocks.shape[1]
    totals = blocks.sum(axis=1, keepdims=True)
    rest = totals - blocks
    mu = (m - 1) * blocks - rest
    variance = (m - 1) ** 2 * blocks + rest
    safe_var = np.maximum(variance, 1e-300)
    sigma = np.sqrt(safe_var)
    expected_abs = sigma * math.sqrt(2.0 / math.pi) * np.exp(
        -(mu**2) / (2.0 * safe_var)
    ) + mu * (1.0 - 2.0 * stats.norm.cdf(-mu / sigma))
    expected_abs = np.where(variance <= 0, np.abs(mu), expected_abs)
    return float(expected_abs.sum() / m)


def total_expression_error_upper_bound(alpha_fine: np.ndarray, layout: GridLayout) -> float:
    """City-wide Lemma III.1 bound: ``2 (1 - 1/m) sum_ij alpha_ij``."""
    blocks = layout.mgrid_alpha_blocks(alpha_fine)
    m = layout.hgrids_per_mgrid
    if m == 1:
        return 0.0
    return float(2.0 * (1.0 - 1.0 / m) * blocks.sum())
