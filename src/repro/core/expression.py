"""Expression-error calculators (Section III-B of the paper).

For a homogeneous grid (HGrid) ``r_ij`` with Poisson mean ``alpha_ij`` inside a
model grid (MGrid) of ``m`` HGrids, the expression error is

    E_e(i, j) = E | lambda_ij - (lambda_ij + lambda_{i,!=j}) / m |
              = E | ((m - 1) * lambda_ij - lambda_{i,!=j}) / m |

where ``lambda_ij ~ Poisson(alpha_ij)`` and ``lambda_{i,!=j} ~ Poisson(beta)``
with ``beta = sum_{g != j} alpha_ig`` are independent (Equation 7).

This module provides several calculators that trade speed for fidelity:

* :func:`expression_error_reference` — dense truncated double sum (the direct
  evaluation of Equation 7), vectorised with NumPy; the ground truth the other
  implementations are validated against.
* :func:`expression_error_algorithm1` — a line-by-line transliteration of the
  paper's Algorithm 1 (running-product updates, O(m K^2) scalar work).  Kept
  for the Figure 16 cost comparison.
* :func:`expression_error_algorithm2` — the O(m K) fast calculator.  Instead of
  transcribing the paper's index bookkeeping it uses the mathematically
  equivalent prefix-sum identity
  ``E|c - Y| = c (2 F_Y(c) - 1) - 2 S_Y(c) + E[Y]`` with
  ``F_Y(c) = P(Y <= c)`` and ``S_Y(c) = E[Y 1{Y <= c}]``, which needs a single
  O(m K) pass over the truncated support of ``Y``.
* :func:`expression_error_gaussian` — O(1) Normal approximation, accurate for
  moderately large means; enables full-city sweeps in milliseconds.
* :func:`expression_error_monte_carlo` — sampling estimate for property tests.

Batched engine
--------------

:func:`expression_error_batch` evaluates the error of *many* HGrids in a few
vectorised array passes instead of one Python call per cell: the truncated
Poisson pmf tables of all cells are built as one ``(batch, support)`` matrix,
the prefix-sum identity is applied column-wise, and the whole batch is reduced
at once.  A city-scale probe (thousands of HGrids) therefore costs a handful
of NumPy operations.  :func:`mgrid_expression_error_batch` reduces per-cell
errors to per-MGrid totals and :func:`total_expression_error_multi` evaluates
several alpha grids (e.g. every time slot of a day) against one layout in a
single batched pass.

Aggregate helpers (:func:`mgrid_expression_error`,
:func:`total_expression_error`) sum the per-HGrid errors over an MGrid or over
a whole city at a given :class:`~repro.core.grid.GridLayout`; both are backed
by the batched engine.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np
from scipy import special, stats

from repro.core.grid import GridLayout
from repro.utils.poisson import poisson_pmf, truncated_poisson_support
from repro.utils.rng import RandomState, default_rng
from repro.utils.validation import ensure_non_negative, ensure_positive

ExpressionMethod = Literal["auto", "exact", "algorithm1", "algorithm2", "gaussian", "reference"]

#: Reference truncation hyper-parameter K (the paper uses 250; smaller values
#: are adequate for the laptop-scale alphas used in tests and benches).  When
#: ``k`` is omitted the calculators size the truncation to the actual means
#: via :func:`default_k_for` instead, which stays accurate for large alphas.
DEFAULT_K = 120

#: Mean above which the Gaussian approximation is considered accurate enough
#: for "auto" mode (relative error well below 1% in validation tests).
_GAUSSIAN_MEAN_THRESHOLD = 25.0


def _validate_inputs(alpha_ij: float, alpha_rest: float, m: int, k: int) -> None:
    ensure_non_negative(alpha_ij, "alpha_ij")
    ensure_non_negative(alpha_rest, "alpha_rest")
    ensure_positive(m, "m")
    ensure_positive(k, "K")


def expression_error_reference(
    alpha_ij: float, alpha_rest: float, m: int, k: int | None = None
) -> float:
    """Direct truncated evaluation of Equation 7 (dense double sum).

    ``alpha_rest`` is ``sum_{g != j} alpha_ig``.  The double sum runs over
    ``kh in [0, K]`` and ``km in [0, (m - 1) K]`` as in Theorem III.2.
    ``k=None`` picks a truncation covering both Poisson tails
    (:func:`default_k_for`), so large means stay accurate.
    """
    if k is None:
        k = default_k_for(alpha_ij, alpha_rest, m)
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    kh = np.arange(0, k + 1)
    km = np.arange(0, (m - 1) * k + 1)
    pmf_h = poisson_pmf(kh, alpha_ij)
    pmf_m = poisson_pmf(km, alpha_rest)
    deviation = np.abs((m - 1) * kh[:, None] - km[None, :]) / m
    return float(np.sum(deviation * pmf_h[:, None] * pmf_m[None, :]))


def expression_error_algorithm1(
    alpha_ij: float, alpha_rest: float, m: int, k: int | None = None
) -> float:
    """Paper Algorithm 1: running-product evaluation of the truncated series.

    Complexity O(m K^2) in scalar operations.  Retained for the Figure 16
    runtime comparison and as an independent implementation for cross-checks.
    ``k=None`` picks a tail-covering truncation (:func:`default_k_for`).
    """
    if k is None:
        k = default_k_for(alpha_ij, alpha_rest, m)
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    total = 0.0
    # p1 tracks e^{-alpha_ij} alpha_ij^{kh} / kh!.
    p1 = math.exp(-alpha_ij)
    for kh in range(0, k + 1):
        # p2 tracks e^{-alpha_rest} alpha_rest^{km} / km!.
        p2 = math.exp(-alpha_rest)
        for km in range(0, (m - 1) * k + 1):
            delta = abs((m - 1) * kh - km) / m
            total += delta * p1 * p2
            p2 = p2 * alpha_rest / (km + 1)
        p1 = p1 * alpha_ij / (kh + 1)
    return total


def expression_error_algorithm2(
    alpha_ij: float, alpha_rest: float, m: int, k: int | None = None
) -> float:
    """Fast O(m K) expression-error calculator (paper Algorithm 2 equivalent).

    Uses prefix sums of the Poisson pmf of ``Y = lambda_{i,!=j}`` truncated at
    ``(m - 1) K``:

        E|c - Y| = c * (2 F(c) - 1) - 2 S(c) + E_trunc[Y]

    evaluated at ``c = (m - 1) kh`` for every ``kh``, then averaged over the
    truncated Poisson pmf of ``lambda_ij`` and divided by ``m``.  ``k=None``
    picks a tail-covering truncation (:func:`default_k_for`).
    """
    if k is None:
        k = default_k_for(alpha_ij, alpha_rest, m)
    _validate_inputs(alpha_ij, alpha_rest, m, k)
    if m == 1:
        return 0.0
    km = np.arange(0, (m - 1) * k + 1)
    pmf_rest = poisson_pmf(km, alpha_rest)
    cdf_rest = np.cumsum(pmf_rest)
    partial_mean = np.cumsum(km * pmf_rest)
    truncated_mean = partial_mean[-1]

    kh = np.arange(0, k + 1)
    pmf_h = poisson_pmf(kh, alpha_ij)
    c = (m - 1) * kh
    c = np.minimum(c, km[-1])
    expected_abs = c * (2.0 * cdf_rest[c] - cdf_rest[-1]) - 2.0 * partial_mean[c] + truncated_mean
    return float(np.sum(pmf_h * expected_abs) / m)


def expression_error_gaussian(
    alpha_ij: float, alpha_rest: float, m: int
) -> float:
    """Normal approximation of the expression error (O(1)).

    ``D = (m - 1) lambda_ij - lambda_{i,!=j}`` has mean
    ``mu = (m - 1) alpha_ij - alpha_rest`` and variance
    ``sigma^2 = (m - 1)^2 alpha_ij + alpha_rest``.  Approximating ``D`` as
    Normal, ``E|D| = sigma sqrt(2/pi) exp(-mu^2 / 2 sigma^2)
    + mu (1 - 2 Phi(-mu / sigma))``.
    """
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    if m == 1:
        return 0.0
    mu = (m - 1) * alpha_ij - alpha_rest
    variance = (m - 1) ** 2 * alpha_ij + alpha_rest
    if variance <= 0:
        return abs(mu) / m
    sigma = math.sqrt(variance)
    expected_abs = sigma * math.sqrt(2.0 / math.pi) * math.exp(
        -(mu**2) / (2.0 * variance)
    ) + mu * (1.0 - 2.0 * stats.norm.cdf(-mu / sigma))
    return float(expected_abs / m)


def expression_error_monte_carlo(
    alpha_ij: float,
    alpha_rest: float,
    m: int,
    samples: int = 200_000,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of the expression error (used in property tests)."""
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    ensure_positive(samples, "samples")
    if m == 1:
        return 0.0
    rng = default_rng(seed)
    lam_h = rng.poisson(alpha_ij, size=samples)
    lam_rest = rng.poisson(alpha_rest, size=samples)
    deviations = np.abs((m - 1) * lam_h - lam_rest) / m
    return float(deviations.mean())


def expression_error_upper_bound(alpha_ij: float, alpha_rest: float, m: int) -> float:
    """Analytic upper bound from Lemma III.1: ``(1 - 2/m) alpha_ij + sum_k alpha_ik / m``."""
    _validate_inputs(alpha_ij, alpha_rest, m, 1)
    total_alpha = alpha_ij + alpha_rest
    return (1.0 - 2.0 / m) * alpha_ij + total_alpha / m


def default_k_for(alpha_ij: float, alpha_rest: float, m: int) -> int:
    """Truncation parameter large enough to cover both Poisson tails.

    Keeps the truncated series within ~1e-6 of the untruncated value for the
    alphas encountered in practice while avoiding a needlessly large K for
    small means.
    """
    k_h = truncated_poisson_support(alpha_ij, coverage=1.0 - 1e-8)
    k_rest = truncated_poisson_support(alpha_rest, coverage=1.0 - 1e-8)
    if m > 1:
        k_rest = math.ceil(k_rest / (m - 1))
    return max(8, k_h, k_rest)


# --------------------------------------------------------------------- #
# Batched engine
# --------------------------------------------------------------------- #

#: Upper bound on the number of pmf-table entries materialised per batched
#: pass; larger batches are processed in chunks of this size so city-scale
#: sweeps stay within a few tens of megabytes of working memory.
BATCH_TABLE_BUDGET = 4_000_000


def _poisson_pmf_table(support: np.ndarray, means: np.ndarray) -> np.ndarray:
    """Poisson pmf of every mean in ``means`` over ``support``: ``(B, S)`` table.

    Identical log-space evaluation to :func:`repro.utils.poisson.poisson_pmf`,
    broadcast over a batch of means so one table serves a whole city probe.
    """
    support = np.asarray(support, dtype=float)
    means = np.asarray(means, dtype=float)
    safe = np.where(means > 0, means, 1.0)
    log_pmf = (
        support[None, :] * np.log(safe)[:, None]
        - safe[:, None]
        - special.gammaln(support + 1.0)[None, :]
    )
    table = np.exp(log_pmf)
    zero = means <= 0
    if np.any(zero):
        table[zero] = np.where(support[None, :] == 0, 1.0, 0.0)
    return table


def _batch_algorithm2(
    alpha_ij: np.ndarray, alpha_rest: np.ndarray, m: int, k: int
) -> np.ndarray:
    """Vectorised Algorithm 2 over a batch of (alpha_ij, alpha_rest) cells.

    Builds the truncated pmf table of ``Y = lambda_{i,!=j}`` for the whole
    batch at once and applies the prefix-sum identity column-wise — the same
    arithmetic as :func:`expression_error_algorithm2`, one row per cell.
    """
    km = np.arange(0, (m - 1) * k + 1)
    pmf_rest = _poisson_pmf_table(km, alpha_rest)
    cdf_rest = np.cumsum(pmf_rest, axis=1)
    partial_mean = np.cumsum(km[None, :] * pmf_rest, axis=1)
    truncated_mean = partial_mean[:, -1]

    kh = np.arange(0, k + 1)
    pmf_h = _poisson_pmf_table(kh, alpha_ij)
    c = np.minimum((m - 1) * kh, km[-1])
    expected_abs = (
        c[None, :] * (2.0 * cdf_rest[:, c] - cdf_rest[:, -1:])
        - 2.0 * partial_mean[:, c]
        + truncated_mean[:, None]
    )
    return (pmf_h * expected_abs).sum(axis=1) / m


def _batch_gaussian(alpha_ij: np.ndarray, alpha_rest: np.ndarray, m: int) -> np.ndarray:
    """Vectorised Normal approximation over a batch of cells (O(batch))."""
    mu = (m - 1) * alpha_ij - alpha_rest
    variance = (m - 1) ** 2 * alpha_ij + alpha_rest
    safe_var = np.maximum(variance, 1e-300)
    sigma = np.sqrt(safe_var)
    expected_abs = sigma * math.sqrt(2.0 / math.pi) * np.exp(
        -(mu**2) / (2.0 * safe_var)
    ) + mu * (1.0 - 2.0 * stats.norm.cdf(-mu / sigma))
    expected_abs = np.where(variance <= 0, np.abs(mu), expected_abs)
    return expected_abs / m


def _batch_algorithm2_chunked(
    alpha_ij: np.ndarray, alpha_rest: np.ndarray, m: int, k: int
) -> np.ndarray:
    """Apply :func:`_batch_algorithm2` in memory-bounded chunks."""
    table_width = (m - 1) * k + 1
    chunk = max(1, BATCH_TABLE_BUDGET // table_width)
    if alpha_ij.size <= chunk:
        return _batch_algorithm2(alpha_ij, alpha_rest, m, k)
    pieces = [
        _batch_algorithm2(alpha_ij[start : start + chunk], alpha_rest[start : start + chunk], m, k)
        for start in range(0, alpha_ij.size, chunk)
    ]
    return np.concatenate(pieces)


def expression_error_batch(
    alphas: np.ndarray,
    m: int | None = None,
    rest: np.ndarray | None = None,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> np.ndarray:
    """Per-HGrid expression errors for a whole batch of cells at once.

    Two input conventions are supported:

    * **Block mode** (``rest is None``): ``alphas`` holds per-HGrid alphas
      grouped by MGrid along the last axis, shape ``(..., m)`` — e.g. the
      output of :meth:`repro.core.grid.GridLayout.mgrid_alpha_blocks`.  The
      rest-of-MGrid mass of each cell is derived from its block.
    * **Elementwise mode** (``rest`` given): ``alphas`` and ``rest`` are
      broadcast-compatible arrays of ``alpha_ij`` and ``alpha_{i,!=j}`` values
      and ``m`` must be given explicitly.

    Returns an array of per-cell errors with the same shape as ``alphas``.
    With a shared ``k`` the result matches the scalar calculators cell-for-cell
    to floating-point accuracy; with ``k=None`` a batch-wide truncation large
    enough for every cell is chosen.  ``method`` accepts the same names as
    :func:`expression_error`; ``"algorithm1"`` and ``"reference"`` fall back to
    a per-cell loop (they exist for cross-checks, not speed).
    """
    alphas = np.asarray(alphas, dtype=float)
    if rest is None:
        if alphas.ndim < 1 or alphas.shape[-1] == 0:
            raise ValueError("block-mode alphas must have a non-empty last axis")
        block_m = alphas.shape[-1]
        if m is not None and int(m) != block_m:
            raise ValueError(
                f"m={m} does not match the block size {block_m} of the last axis"
            )
        m = block_m
        rest = alphas.sum(axis=-1, keepdims=True) - alphas
    else:
        if m is None:
            raise ValueError("m is required in elementwise mode (rest given)")
        alphas, rest = np.broadcast_arrays(alphas, np.asarray(rest, dtype=float))
    m = int(m)
    ensure_positive(m, "m")
    if np.any(alphas < 0) or np.any(rest < 0):
        raise ValueError("all alphas must be non-negative")
    shape = alphas.shape
    if m == 1:
        return np.zeros(shape)

    flat_alpha = np.ascontiguousarray(alphas, dtype=float).ravel()
    flat_rest = np.ascontiguousarray(rest, dtype=float).ravel()
    if flat_alpha.size == 0:
        return np.zeros(shape)

    if method == "gaussian":
        return _batch_gaussian(flat_alpha, flat_rest, m).reshape(shape)
    if method in ("algorithm1", "reference"):
        calculator = (
            expression_error_algorithm1 if method == "algorithm1" else expression_error_reference
        )
        out = np.array(
            [
                calculator(
                    float(a), float(r), m, k=k if k is not None else default_k_for(float(a), float(r), m)
                )
                for a, r in zip(flat_alpha, flat_rest)
            ]
        )
        return out.reshape(shape)
    if method not in ("auto", "exact", "algorithm2"):
        raise ValueError(f"unknown expression-error method {method!r}")

    out = np.zeros(flat_alpha.size)
    if method == "auto":
        exact_mask = flat_alpha + flat_rest < _GAUSSIAN_MEAN_THRESHOLD
        if np.any(~exact_mask):
            out[~exact_mask] = _batch_gaussian(
                flat_alpha[~exact_mask], flat_rest[~exact_mask], m
            )
    else:
        exact_mask = np.ones(flat_alpha.size, dtype=bool)
    if np.any(exact_mask):
        exact_alpha = flat_alpha[exact_mask]
        exact_rest = flat_rest[exact_mask]
        shared_k = k if k is not None else default_k_for(
            float(exact_alpha.max()), float(exact_rest.max()), m
        )
        ensure_positive(shared_k, "K")
        out[exact_mask] = _batch_algorithm2_chunked(exact_alpha, exact_rest, m, shared_k)
    return out.reshape(shape)


def mgrid_expression_error_batch(
    blocks: np.ndarray,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> np.ndarray:
    """Total expression error of every MGrid in ``blocks`` in one batched pass.

    ``blocks`` has shape ``(..., m)`` (one row of per-HGrid alphas per MGrid);
    the result drops the last axis.  Equivalent to mapping
    :func:`mgrid_expression_error` over the rows, but vectorised.
    """
    return expression_error_batch(blocks, k=k, method=method).sum(axis=-1)


def total_expression_error_multi(
    alpha_stack: np.ndarray,
    layout: GridLayout,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> np.ndarray:
    """City-total expression error of several alpha grids in one batched pass.

    ``alpha_stack`` has shape ``(..., F, F)`` with ``F`` the layout's fine
    resolution — e.g. one alpha grid per time slot.  Returns the summed
    expression error per leading entry (shape ``(...)``), equal to mapping
    :func:`total_expression_error` over the stack.
    """
    blocks = layout.mgrid_alpha_blocks(alpha_stack)
    if layout.hgrids_per_mgrid == 1:
        return np.zeros(blocks.shape[:-2])
    return mgrid_expression_error_batch(blocks, k=k, method=method).sum(axis=-1)


def expression_error(
    alpha_ij: float,
    alpha_rest: float,
    m: int,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Expression error of one HGrid, dispatching on ``method``.

    ``method="auto"`` uses the Gaussian approximation when the MGrid mean is
    large (where it is essentially exact) and the exact O(mK) calculator
    otherwise.
    """
    if method == "gaussian":
        return expression_error_gaussian(alpha_ij, alpha_rest, m)
    if k is None:
        k = default_k_for(alpha_ij, alpha_rest, m)
    if method == "reference":
        return expression_error_reference(alpha_ij, alpha_rest, m, k)
    if method == "algorithm1":
        return expression_error_algorithm1(alpha_ij, alpha_rest, m, k)
    if method in ("algorithm2", "exact"):
        return expression_error_algorithm2(alpha_ij, alpha_rest, m, k)
    if method == "auto":
        total = alpha_ij + alpha_rest
        if total >= _GAUSSIAN_MEAN_THRESHOLD:
            return expression_error_gaussian(alpha_ij, alpha_rest, m)
        return expression_error_algorithm2(alpha_ij, alpha_rest, m, k)
    raise ValueError(f"unknown expression-error method {method!r}")


def mgrid_expression_error(
    alphas: np.ndarray,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Total expression error of one MGrid given the alphas of its ``m`` HGrids."""
    alphas = np.asarray(alphas, dtype=float).ravel()
    if alphas.size == 0:
        raise ValueError("an MGrid must contain at least one HGrid")
    if np.any(alphas < 0):
        raise ValueError("all alphas must be non-negative")
    if alphas.size == 1:
        return 0.0
    return float(expression_error_batch(alphas[None, :], k=k, method=method).sum())


def total_expression_error(
    alpha_fine: np.ndarray,
    layout: GridLayout,
    k: int | None = None,
    method: ExpressionMethod = "auto",
) -> float:
    """Summed expression error of all HGrids in the city for a given layout.

    One batched pass over all MGrids (see :func:`expression_error_batch`); in
    ``"auto"`` mode the Gaussian approximation handles the large-mean MGrids
    and a single batched Algorithm-2 evaluation covers the small-mean rest.

    Parameters
    ----------
    alpha_fine:
        Per-HGrid Poisson means on the layout's fine lattice, shape
        ``(fine_resolution, fine_resolution)``.
    layout:
        The MGrid/HGrid layout under evaluation.
    k, method:
        Passed to the batched calculators.
    """
    blocks = layout.mgrid_alpha_blocks(alpha_fine)
    if layout.hgrids_per_mgrid == 1:
        return 0.0
    return float(mgrid_expression_error_batch(blocks, k=k, method=method).sum())


def total_expression_error_upper_bound(alpha_fine: np.ndarray, layout: GridLayout) -> float:
    """City-wide Lemma III.1 bound: ``2 (1 - 1/m) sum_ij alpha_ij``."""
    blocks = layout.mgrid_alpha_blocks(alpha_fine)
    m = layout.hgrids_per_mgrid
    if m == 1:
        return 0.0
    return float(2.0 * (1.0 - 1.0 / m) * blocks.sum())
