"""OGSS search algorithms: brute force, Ternary Search (Alg. 4), Iterative Method (Alg. 5).

All three operate on an *objective* ``e(side)`` mapping an MGrid side length
``sqrt(n)`` to the upper bound of the total real error; in practice that
objective is an :class:`~repro.core.upper_bound.UpperBoundEvaluator`, whose
internal cache makes repeated probes of the same side free.

The search returns the side (and ``n = side**2``) minimising the objective.
Ternary Search assumes (as the paper argues and the experiments confirm) that
``e`` first decreases then increases in ``sqrt(n)``; the Iterative Method does
a bounded local search from an experience-based initial position and is more
robust when the curve is not perfectly unimodal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.utils.validation import ensure_perfect_square, ensure_positive

#: Objective type: maps sqrt(n) to the upper bound of the total real error.
Objective = Callable[[int], float]


@dataclass
class SearchResult:
    """Outcome of one OGSS search.

    Attributes
    ----------
    algorithm:
        ``"brute_force"``, ``"ternary"`` or ``"iterative"``.
    best_side:
        The chosen ``sqrt(n)``.
    best_value:
        Objective value at ``best_side``.
    evaluations:
        Number of *distinct* sides whose objective was computed.
    probes:
        Map ``side -> objective`` of every side evaluated during the search.
    """

    algorithm: str
    best_side: int
    best_value: float
    evaluations: int
    probes: Dict[int, float] = field(default_factory=dict)

    @property
    def best_n(self) -> int:
        """The selected number of MGrids ``n = side**2``."""
        return self.best_side * self.best_side


class _CountingObjective:
    """Wraps an objective to count and memoise distinct evaluations."""

    def __init__(self, objective: Objective) -> None:
        self._objective = objective
        self.values: Dict[int, float] = {}

    def __call__(self, side: int) -> float:
        side = int(side)
        if side not in self.values:
            self.values[side] = float(self._objective(side))
        return self.values[side]

    @property
    def evaluations(self) -> int:
        return len(self.values)


def _max_side(hgrid_budget: int) -> int:
    ensure_perfect_square(hgrid_budget, "hgrid_budget")
    return math.isqrt(hgrid_budget)


def brute_force_search(
    objective: Objective,
    hgrid_budget: int,
    min_side: int = 1,
    max_side: Optional[int] = None,
) -> SearchResult:
    """Evaluate every candidate side and return the global optimum."""
    upper = _max_side(hgrid_budget) if max_side is None else int(max_side)
    ensure_positive(min_side, "min_side")
    if min_side > upper:
        raise ValueError(f"min_side {min_side} exceeds max side {upper}")
    counting = _CountingObjective(objective)
    best_side = min_side
    best_value = counting(min_side)
    for side in range(min_side + 1, upper + 1):
        value = counting(side)
        if value < best_value:
            best_side, best_value = side, value
    return SearchResult(
        algorithm="brute_force",
        best_side=best_side,
        best_value=best_value,
        evaluations=counting.evaluations,
        probes=dict(counting.values),
    )


def ternary_search(
    objective: Objective,
    hgrid_budget: int,
    min_side: int = 1,
    max_side: Optional[int] = None,
) -> SearchResult:
    """Paper Algorithm 4: ternary search over ``sqrt(n)``.

    Each round compares the objective at the two third-points of the current
    interval and discards the worse third; O(log sqrt(N)) evaluations.  Finds
    the global optimum whenever the objective is unimodal; otherwise still
    returns a good local solution (quantified in Table IV).
    """
    upper = _max_side(hgrid_budget) if max_side is None else int(max_side)
    ensure_positive(min_side, "min_side")
    if min_side > upper:
        raise ValueError(f"min_side {min_side} exceeds max side {upper}")
    counting = _CountingObjective(objective)
    low, high = min_side, upper
    # Narrow the interval while the two third-points are interior and distinct;
    # once the interval is width <= 2 (or the probes collapse onto the
    # endpoints) finish with a direct scan so the loop always terminates.
    while high - low > 2:
        right_probe = math.ceil((2 * high + low) / 3)
        left_probe = math.floor((high + 2 * low) / 3)
        if left_probe <= low or right_probe >= high or left_probe >= right_probe:
            break
        if counting(left_probe) > counting(right_probe):
            low = left_probe
        else:
            high = right_probe
    best_side = low
    for side in range(low, high + 1):
        if counting(side) < counting(best_side):
            best_side = side
    return SearchResult(
        algorithm="ternary",
        best_side=best_side,
        best_value=counting(best_side),
        evaluations=counting.evaluations,
        probes=dict(counting.values),
    )


def iterative_search(
    objective: Objective,
    hgrid_budget: int,
    initial_side: int = 16,
    bound: int = 4,
    min_side: int = 1,
    max_side: Optional[int] = None,
) -> SearchResult:
    """Paper Algorithm 5: bounded local search from an experience-based start.

    Starting from ``initial_side`` (the paper uses 16, i.e. the common
    2 km x 2 km default), probe positions up to ``bound`` steps away on both
    sides, starting with the farthest; move to the first strictly better
    position found and repeat until no position within the bound improves.
    """
    upper = _max_side(hgrid_budget) if max_side is None else int(max_side)
    ensure_positive(min_side, "min_side")
    ensure_positive(bound, "bound")
    if min_side > upper:
        raise ValueError(f"min_side {min_side} exceeds max side {upper}")
    counting = _CountingObjective(objective)
    position = min(max(int(initial_side), min_side), upper)
    improved = True
    while improved:
        improved = False
        current_value = counting(position)
        for step in range(bound, 0, -1):
            forward = position + step
            backward = position - step
            if forward <= upper and current_value > counting(forward):
                position = forward
                improved = True
                break
            if backward >= min_side and current_value > counting(backward):
                position = backward
                improved = True
                break
    return SearchResult(
        algorithm="iterative",
        best_side=position,
        best_value=counting(position),
        evaluations=counting.evaluations,
        probes=dict(counting.values),
    )


def run_search(
    algorithm: str,
    objective: Objective,
    hgrid_budget: int,
    **kwargs,
) -> SearchResult:
    """Dispatch helper: run the named search algorithm.

    ``algorithm`` is one of ``"brute_force"``, ``"ternary"`` or ``"iterative"``.
    """
    algorithms = {
        "brute_force": brute_force_search,
        "ternary": ternary_search,
        "iterative": iterative_search,
    }
    if algorithm not in algorithms:
        raise ValueError(
            f"unknown search algorithm {algorithm!r}; expected one of {sorted(algorithms)}"
        )
    return algorithms[algorithm](objective, hgrid_budget, **kwargs)
