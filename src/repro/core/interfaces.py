"""Protocols connecting the core tuner to the prediction substrate.

The core package never imports concrete models; anything satisfying
:class:`DemandPredictor` (fit on a dataset at an MGrid resolution, predict the
demand grid for given (day, slot) pairs) can be tuned.  The concrete NumPy
models live in :mod:`repro.prediction`.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.data.dataset import EventDataset

#: A (day index, slot index) pair identifying one prediction target.
DaySlot = Tuple[int, int]


@runtime_checkable
class DemandPredictor(Protocol):
    """Minimal interface a prediction model must implement to be tunable."""

    #: Human-readable model name (used in reports and experiment tables).
    name: str

    def fit(self, dataset: EventDataset, resolution: int) -> None:
        """Train the model to predict ``resolution x resolution`` MGrid counts."""
        ...

    def predict(
        self, dataset: EventDataset, resolution: int, targets: Sequence[DaySlot]
    ) -> np.ndarray:
        """Predict the demand grid for each (day, slot) target.

        Returns an array of shape ``(len(targets), resolution, resolution)``.
        """
        ...


def evaluation_targets(
    dataset: EventDataset,
    days: Sequence[int],
    min_history_slots: int = 8,
) -> list[DaySlot]:
    """(day, slot) pairs usable as evaluation targets.

    Slots whose history window would reach before the start of the log are
    excluded so every model can build its input features.
    """
    slots = dataset.slots_per_day
    pairs: list[DaySlot] = []
    for day in days:
        day = int(day)
        if day < 0 or day >= dataset.num_days:
            raise ValueError(f"day {day} outside the dataset range")
        for slot in range(slots):
            global_slot = day * slots + slot
            if global_slot < min_history_slots:
                continue
            pairs.append((day, slot))
    if not pairs:
        raise ValueError("no evaluation targets: the requested days have no usable slots")
    return pairs


def actual_counts_for_targets(
    dataset: EventDataset, resolution: int, targets: Sequence[DaySlot]
) -> np.ndarray:
    """Actual counts at ``resolution`` for each (day, slot) target."""
    counts = dataset.counts(resolution)
    days = np.asarray([t[0] for t in targets], dtype=int)
    slots = np.asarray([t[1] for t in targets], dtype=int)
    return counts[days, slots]
