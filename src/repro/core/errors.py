"""Empirical error decomposition: real, model and expression error (Defs. 3-5).

Given a prediction model's MGrid-level forecasts and the actual fine-grained
(HGrid-level) counts over a set of evaluation samples, this module computes the
three error totals the paper studies:

* **real error**    ``E | lambda_hat_ij - lambda_ij |`` — HGrid-level forecast error,
* **model error**   ``E | lambda_hat_ij - lambda_bar_ij |`` — the model's own error,
* **expression error** ``E | lambda_bar_ij - lambda_ij |`` — the cost of spreading an
  MGrid total uniformly over its HGrids,

where ``lambda_bar_ij = lambda_i / m`` and ``lambda_hat_ij = lambda_hat_i / m``
(maximum-entropy uniform spreading).  Theorem II.1 states
``real <= model + expression``; :class:`ErrorReport` carries all three so the
inequality can be checked empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import GridLayout


@dataclass(frozen=True)
class ErrorReport:
    """Summed-over-all-HGrids errors for one evaluation.

    Attributes
    ----------
    real_error:
        Total real error (Definition 3), summed over HGrids.
    model_error:
        Total model error (Definition 4), summed over HGrids.
    expression_error:
        Total (empirical) expression error (Definition 5), summed over HGrids.
    num_mgrids, hgrids_per_mgrid:
        The layout the errors were computed under.
    num_samples:
        Number of evaluation samples (time slots) averaged over.
    """

    real_error: float
    model_error: float
    expression_error: float
    num_mgrids: int
    hgrids_per_mgrid: int
    num_samples: int

    @property
    def upper_bound(self) -> float:
        """Theorem II.1 upper bound: model error + expression error."""
        return self.model_error + self.expression_error

    @property
    def bound_gap(self) -> float:
        """Slack of the upper bound (always >= 0 up to floating-point error)."""
        return self.upper_bound - self.real_error

    def satisfies_upper_bound(self, tolerance: float = 1e-9) -> bool:
        """True if ``real_error <= model_error + expression_error`` (within tolerance)."""
        return self.real_error <= self.upper_bound + tolerance


def _validate_shapes(
    predictions: np.ndarray, actual_fine: np.ndarray, layout: GridLayout
) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=float)
    actual_fine = np.asarray(actual_fine, dtype=float)
    if predictions.ndim == 2:
        predictions = predictions[None, ...]
    if actual_fine.ndim == 2:
        actual_fine = actual_fine[None, ...]
    side = layout.mgrid_side
    fine = layout.fine_resolution
    if predictions.shape[1:] != (side, side):
        raise ValueError(
            f"predictions must have shape (samples, {side}, {side}), "
            f"got {predictions.shape}"
        )
    if actual_fine.shape[1:] != (fine, fine):
        raise ValueError(
            f"actual_fine must have shape (samples, {fine}, {fine}), "
            f"got {actual_fine.shape}"
        )
    if predictions.shape[0] != actual_fine.shape[0]:
        raise ValueError(
            "predictions and actual_fine must have the same number of samples"
        )
    if predictions.shape[0] == 0:
        raise ValueError("at least one evaluation sample is required")
    return predictions, actual_fine


def real_error_total(
    predictions: np.ndarray, actual_fine: np.ndarray, layout: GridLayout
) -> float:
    """Total real error: HGrid-level |prediction - actual| summed over HGrids."""
    predictions, actual_fine = _validate_shapes(predictions, actual_fine, layout)
    predicted_fine = layout.spread_to_hgrids(predictions)
    per_cell = np.abs(predicted_fine - actual_fine).mean(axis=0)
    return float(per_cell.sum())


def model_error_total(
    predictions: np.ndarray, actual_fine: np.ndarray, layout: GridLayout
) -> float:
    """Total model error: |prediction - actual| at MGrid level (Definition 4).

    Because both the prediction and the estimate spread an MGrid total evenly
    over its ``m`` HGrids, the summed HGrid-level model error equals the summed
    MGrid-level absolute error.
    """
    predictions, actual_fine = _validate_shapes(predictions, actual_fine, layout)
    actual_coarse = layout.aggregate_to_mgrids(actual_fine)
    per_cell = np.abs(predictions - actual_coarse).mean(axis=0)
    return float(per_cell.sum())


def expression_error_total_empirical(
    actual_fine: np.ndarray, layout: GridLayout
) -> float:
    """Total empirical expression error: |uniform spread of actual - actual|."""
    actual_fine = np.asarray(actual_fine, dtype=float)
    if actual_fine.ndim == 2:
        actual_fine = actual_fine[None, ...]
    fine = layout.fine_resolution
    if actual_fine.shape[1:] != (fine, fine):
        raise ValueError(
            f"actual_fine must have shape (samples, {fine}, {fine}), "
            f"got {actual_fine.shape}"
        )
    actual_coarse = layout.aggregate_to_mgrids(actual_fine)
    estimated_fine = layout.spread_to_hgrids(actual_coarse)
    per_cell = np.abs(estimated_fine - actual_fine).mean(axis=0)
    return float(per_cell.sum())


def decompose_errors(
    predictions: np.ndarray, actual_fine: np.ndarray, layout: GridLayout
) -> ErrorReport:
    """Full error decomposition for one set of predictions.

    Parameters
    ----------
    predictions:
        MGrid-level forecasts, shape ``(samples, sqrt(n), sqrt(n))`` (a single
        2-D grid is also accepted).
    actual_fine:
        Actual HGrid-level counts, shape ``(samples, F, F)`` where ``F`` is the
        layout's fine resolution.
    layout:
        MGrid/HGrid layout tying the two resolutions together.
    """
    predictions, actual_fine = _validate_shapes(predictions, actual_fine, layout)
    return ErrorReport(
        real_error=real_error_total(predictions, actual_fine, layout),
        model_error=model_error_total(predictions, actual_fine, layout),
        expression_error=expression_error_total_empirical(actual_fine, layout),
        num_mgrids=layout.num_mgrids,
        hgrids_per_mgrid=layout.hgrids_per_mgrid,
        num_samples=predictions.shape[0],
    )
