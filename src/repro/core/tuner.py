"""High-level GridTuner API.

:class:`GridTuner` ties everything together: given an event dataset, a
prediction-model factory and an HGrid budget ``N`` it can

* evaluate the real-error upper bound ``e(sqrt(n))`` over a sweep of candidate
  grid sizes (:meth:`error_curve`),
* select the optimal number of MGrids with brute force, Ternary Search or the
  Iterative Method (:meth:`select`),
* empirically decompose the real error of the tuned model on the test split
  (:meth:`evaluate_real_error`),

which are exactly the operations the paper's evaluation section performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.errors import ErrorReport, decompose_errors
from repro.core.expression import ExpressionMethod
from repro.core.grid import GridLayout, candidate_mgrid_sides
from repro.core.homogeneity import select_hgrid_budget
from repro.core.interfaces import (
    DemandPredictor,
    actual_counts_for_targets,
    evaluation_targets,
)
from repro.core.search import SearchResult, run_search
from repro.core.upper_bound import UpperBoundEvaluator, UpperBoundResult
from repro.data.dataset import EventDataset
from repro.utils.validation import ensure_perfect_square


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a full tuning run."""

    search: SearchResult
    upper_bound: UpperBoundResult

    @property
    def optimal_n(self) -> int:
        """Selected number of MGrids."""
        return self.search.best_n

    @property
    def optimal_side(self) -> int:
        """Selected ``sqrt(n)``."""
        return self.search.best_side


class GridTuner:
    """Optimal grid-size selection for a spatiotemporal prediction model.

    Parameters
    ----------
    dataset:
        Event dataset with train/val/test split.
    model_factory:
        Zero-argument callable returning a fresh, untrained predictor.
    hgrid_budget:
        Total HGrid budget ``N`` (perfect square).  If ``None`` it is selected
        automatically from the D_alpha turning point (Section III-A).
    alpha_slot:
        Time slot used for alpha estimation (default 08:00-08:30).
    expression_method, expression_k:
        Expression-error calculator configuration.
    """

    def __init__(
        self,
        dataset: EventDataset,
        model_factory: Callable[[], DemandPredictor],
        hgrid_budget: Optional[int] = None,
        alpha_slot: int = 16,
        expression_method: ExpressionMethod = "auto",
        expression_k: Optional[int] = None,
        evaluation_days: Optional[Sequence[int]] = None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.alpha_slot = alpha_slot
        if hgrid_budget is None:
            hgrid_budget = self.select_hgrid_budget()
        self.hgrid_budget = ensure_perfect_square(hgrid_budget, "hgrid_budget")
        self.evaluator = UpperBoundEvaluator(
            dataset=dataset,
            model_factory=model_factory,
            hgrid_budget=self.hgrid_budget,
            alpha_slot=alpha_slot,
            evaluation_days=evaluation_days,
            expression_method=expression_method,
            expression_k=expression_k,
        )

    # ------------------------------------------------------------------ #
    # N selection
    # ------------------------------------------------------------------ #

    def select_hgrid_budget(
        self, resolutions: Optional[Sequence[int]] = None, flatness: float = 0.05
    ) -> int:
        """Choose N from the turning point of the D_alpha curve (Figure 14)."""
        if resolutions is None:
            resolutions = [4, 8, 16, 32, 64]
        return select_hgrid_budget(
            lambda g: self.dataset.alpha(g, slot=self.alpha_slot),
            resolutions,
            flatness=flatness,
        )

    # ------------------------------------------------------------------ #
    # Error curves and search
    # ------------------------------------------------------------------ #

    def error_curve(
        self, sides: Optional[Sequence[int]] = None
    ) -> Dict[int, UpperBoundResult]:
        """Evaluate the upper bound at each candidate side (``sqrt(n)``).

        Returns a mapping ``side -> UpperBoundResult`` ordered by side.
        """
        if sides is None:
            sides = candidate_mgrid_sides(self.hgrid_budget, min_side=2)
        results: Dict[int, UpperBoundResult] = {}
        for side in sides:
            results[int(side)] = self.evaluator.evaluate_side(int(side))
        return results

    def select(
        self,
        algorithm: str = "iterative",
        min_side: int = 2,
        max_side: Optional[int] = None,
        **kwargs,
    ) -> TuningResult:
        """Run an OGSS search and return the selected grid size.

        ``algorithm`` is ``"brute_force"``, ``"ternary"`` or ``"iterative"``;
        extra keyword arguments (e.g. ``initial_side``, ``bound``) are passed
        to the underlying search.
        """
        search = run_search(
            algorithm,
            self.evaluator,
            self.hgrid_budget,
            min_side=min_side,
            max_side=max_side,
            **kwargs,
        )
        return TuningResult(
            search=search,
            upper_bound=self.evaluator.evaluate_side(search.best_side),
        )

    # ------------------------------------------------------------------ #
    # Empirical evaluation
    # ------------------------------------------------------------------ #

    def evaluate_real_error(
        self,
        mgrid_side: int,
        days: Optional[Sequence[int]] = None,
        model: Optional[DemandPredictor] = None,
    ) -> ErrorReport:
        """Empirically decompose the real error at a given grid size.

        Trains a fresh model at ``mgrid_side`` (unless one is supplied),
        predicts the evaluation slots and compares against the actual
        HGrid-level counts of the test split.
        """
        layout = GridLayout.for_ogss(mgrid_side * mgrid_side, self.hgrid_budget)
        if days is None:
            days = list(self.dataset.split.test_days)
        if model is None:
            model = self.model_factory()
            model.fit(self.dataset, mgrid_side)
        targets = evaluation_targets(self.dataset, days)
        predictions = model.predict(self.dataset, mgrid_side, targets)
        actual_fine = actual_counts_for_targets(
            self.dataset, layout.fine_resolution, targets
        )
        return decompose_errors(predictions, actual_fine, layout)

    def real_error_curve(
        self, sides: Sequence[int], days: Optional[Sequence[int]] = None
    ) -> Dict[int, ErrorReport]:
        """Empirical real-error decomposition over a sweep of grid sizes."""
        reports: Dict[int, ErrorReport] = {}
        for side in sides:
            reports[int(side)] = self.evaluate_real_error(int(side), days=days)
        return reports

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    def layout_for(self, mgrid_side: int) -> GridLayout:
        """The MGrid/HGrid layout used for a candidate side."""
        return GridLayout.for_ogss(mgrid_side * mgrid_side, self.hgrid_budget)

    def predicted_demand(
        self, mgrid_side: int, days: Sequence[int], model: Optional[DemandPredictor] = None
    ) -> np.ndarray:
        """Predicted MGrid demand for all usable slots of ``days``.

        Convenience used by the dispatch case study: returns an array of shape
        ``(targets, side, side)`` aligned with ``evaluation_targets``.
        """
        if model is None:
            model = self.model_factory()
            model.fit(self.dataset, mgrid_side)
        targets = evaluation_targets(self.dataset, days)
        return model.predict(self.dataset, mgrid_side, targets)
