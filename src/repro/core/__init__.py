"""Core GridTuner functionality: the paper's primary contribution.

Public surface:

* grid geometry (:class:`GridSpec`, :class:`GridLayout`),
* error definitions and decomposition (:class:`ErrorReport`, :func:`decompose_errors`),
* expression-error calculators (Algorithms 1/2 and friends),
* homogeneity analysis (``D_alpha`` and the selection of ``N``),
* the real-error upper bound (Algorithm 3),
* OGSS search (brute force, Ternary Search, Iterative Method),
* the high-level :class:`GridTuner`.
"""

from repro.core.grid import (
    BoundingBox,
    GridSpec,
    GridLayout,
    aggregate_counts,
    disaggregate_uniform,
    candidate_mgrid_sides,
)
from repro.core.errors import (
    ErrorReport,
    decompose_errors,
    real_error_total,
    model_error_total,
    expression_error_total_empirical,
)
from repro.core.expression import (
    expression_error,
    expression_error_reference,
    expression_error_algorithm1,
    expression_error_algorithm2,
    expression_error_gaussian,
    expression_error_monte_carlo,
    expression_error_upper_bound,
    expression_error_batch,
    mgrid_expression_error,
    mgrid_expression_error_batch,
    total_expression_error,
    total_expression_error_multi,
    total_expression_error_upper_bound,
    DEFAULT_K,
)
from repro.core.homogeneity import (
    d_alpha,
    d_alpha_batch,
    d_alpha_per_mgrid,
    d_alpha_curve,
    DAlphaCurve,
    select_hgrid_budget,
)
from repro.core.model_error import (
    mean_absolute_error,
    mean_absolute_error_batch,
    total_model_error,
    total_model_error_batch,
    total_model_error_from_mae,
    relative_error,
)
from repro.core.interfaces import (
    DemandPredictor,
    DaySlot,
    evaluation_targets,
    actual_counts_for_targets,
)
from repro.core.upper_bound import UpperBoundEvaluator, UpperBoundResult
from repro.core.search import (
    SearchResult,
    brute_force_search,
    ternary_search,
    iterative_search,
    run_search,
)
from repro.core.tuner import GridTuner, TuningResult
from repro.core.slotwise import (
    SlotwiseGridTuner,
    SlotwiseTuningReport,
    SlotTuningResult,
)

__all__ = [
    "BoundingBox",
    "GridSpec",
    "GridLayout",
    "aggregate_counts",
    "disaggregate_uniform",
    "candidate_mgrid_sides",
    "ErrorReport",
    "decompose_errors",
    "real_error_total",
    "model_error_total",
    "expression_error_total_empirical",
    "expression_error",
    "expression_error_reference",
    "expression_error_algorithm1",
    "expression_error_algorithm2",
    "expression_error_gaussian",
    "expression_error_monte_carlo",
    "expression_error_upper_bound",
    "expression_error_batch",
    "mgrid_expression_error",
    "mgrid_expression_error_batch",
    "total_expression_error",
    "total_expression_error_multi",
    "total_expression_error_upper_bound",
    "DEFAULT_K",
    "d_alpha",
    "d_alpha_batch",
    "d_alpha_per_mgrid",
    "d_alpha_curve",
    "DAlphaCurve",
    "select_hgrid_budget",
    "mean_absolute_error",
    "mean_absolute_error_batch",
    "total_model_error",
    "total_model_error_batch",
    "total_model_error_from_mae",
    "relative_error",
    "DemandPredictor",
    "DaySlot",
    "evaluation_targets",
    "actual_counts_for_targets",
    "UpperBoundEvaluator",
    "UpperBoundResult",
    "SearchResult",
    "brute_force_search",
    "ternary_search",
    "iterative_search",
    "run_search",
    "GridTuner",
    "TuningResult",
    "SlotwiseGridTuner",
    "SlotwiseTuningReport",
    "SlotTuningResult",
]
