"""Homogeneity analysis: the D_alpha(N) metric and the selection of N.

``D_alpha(N) = sum_ij | alpha_ij - mean(alpha) |`` (Equation 2) measures how
unevenly demand is distributed over ``N`` HGrids.  Theorem III.1 shows that
once the HGrids are small enough to be internally uniform, refining further
does not increase ``D_alpha``; the paper therefore picks ``N`` at the turning
point where the curve flattens (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def d_alpha(alpha: np.ndarray) -> float:
    """Unevenness metric ``sum_ij |alpha_ij - mean(alpha)|`` (Equation 2)."""
    alpha = np.asarray(alpha, dtype=float)
    if alpha.size == 0:
        raise ValueError("alpha must contain at least one cell")
    if np.any(alpha < 0):
        raise ValueError("alpha values must be non-negative")
    return float(d_alpha_batch(alpha.reshape(1, -1))[0])


def d_alpha_batch(alpha_stack: np.ndarray) -> np.ndarray:
    """D_alpha of many grids at once: ``(batch, ...)`` in, ``(batch,)`` out.

    Each entry of the leading axis is one alpha grid (any trailing shape);
    entry ``b`` of the result equals ``d_alpha(alpha_stack[b])``.  Used to
    score every time slot of a day — or every grid of a sweep — in one
    vectorised pass instead of a Python loop.
    """
    alpha_stack = np.asarray(alpha_stack, dtype=float)
    if alpha_stack.ndim < 1 or alpha_stack.size == 0:
        raise ValueError("alpha_stack must contain at least one grid")
    flat = alpha_stack.reshape(alpha_stack.shape[0], -1)
    if flat.shape[1] == 0:
        raise ValueError("each grid must contain at least one cell")
    if np.any(flat < 0):
        raise ValueError("alpha values must be non-negative")
    means = flat.mean(axis=1, keepdims=True)
    return np.abs(flat - means).sum(axis=1)


def d_alpha_per_mgrid(alpha_blocks: np.ndarray) -> np.ndarray:
    """D_alpha computed independently inside each MGrid.

    ``alpha_blocks`` has shape ``(num_mgrids, m)`` (see
    :meth:`repro.core.grid.GridLayout.mgrid_alpha_blocks`).  Used for the
    Figure 13 scatter of per-MGrid unevenness against expression error.
    """
    alpha_blocks = np.asarray(alpha_blocks, dtype=float)
    if alpha_blocks.ndim != 2:
        raise ValueError("alpha_blocks must be 2-D (num_mgrids, m)")
    return d_alpha_batch(alpha_blocks)


@dataclass(frozen=True)
class DAlphaCurve:
    """D_alpha evaluated over a sweep of HGrid resolutions."""

    resolutions: tuple[int, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.resolutions) != len(self.values):
            raise ValueError("resolutions and values must have the same length")
        if len(self.resolutions) < 2:
            raise ValueError("a D_alpha curve needs at least two points")

    def turning_point(self, flatness: float = 0.05) -> int:
        """Resolution after which D_alpha stops growing appreciably.

        Returns the smallest resolution whose relative increase to the next
        sampled resolution is below ``flatness``; falls back to the largest
        resolution if the curve never flattens.
        """
        if not 0 < flatness < 1:
            raise ValueError("flatness must be in (0, 1)")
        values = np.asarray(self.values, dtype=float)
        for index in range(len(values) - 1):
            current = values[index]
            nxt = values[index + 1]
            if current <= 0:
                continue
            if (nxt - current) / current < flatness:
                return self.resolutions[index]
        return self.resolutions[-1]


def d_alpha_curve(
    alpha_for_resolution, resolutions: Sequence[int]
) -> DAlphaCurve:
    """Evaluate D_alpha over a resolution sweep.

    Parameters
    ----------
    alpha_for_resolution:
        Callable mapping a per-side resolution to the alpha grid at that
        resolution (typically ``lambda g: dataset.alpha(g, slot)``).
    resolutions:
        Per-side HGrid resolutions to sweep (e.g. ``[8, 16, 32, 64, 128]``).
    """
    resolutions = [int(r) for r in resolutions]
    if any(r <= 0 for r in resolutions):
        raise ValueError("resolutions must be positive")
    values = [d_alpha(alpha_for_resolution(resolution)) for resolution in resolutions]
    return DAlphaCurve(resolutions=tuple(resolutions), values=tuple(values))


def select_hgrid_budget(
    alpha_for_resolution,
    resolutions: Sequence[int],
    flatness: float = 0.05,
) -> int:
    """Select N (total HGrid budget) at the turning point of the D_alpha curve.

    Returns ``turning_resolution ** 2``, i.e. the number of HGrids, matching
    the paper's recommendation to pick the smallest N at which the events in
    each HGrid can be considered uniformly distributed.
    """
    curve = d_alpha_curve(alpha_for_resolution, resolutions)
    side = curve.turning_point(flatness=flatness)
    return side * side
