"""Grid geometry: model grids (MGrids), homogeneous grids (HGrids) and layouts.

The paper divides the study area into ``n`` same-sized MGrids (``n`` a perfect
square so the partition is ``sqrt(n) x sqrt(n)``), and further divides each
MGrid into ``m`` HGrids such that ``n * m > N`` for a chosen total HGrid budget
``N``.  :class:`GridLayout` captures that arithmetic; :class:`GridSpec` handles
mapping between continuous coordinates, cell indices and tensors at a given
resolution, and aggregating fine-resolution count tensors to coarse ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_perfect_square, ensure_positive


@dataclass(frozen=True)
class BoundingBox:
    """Physical extent of the study area in kilometres."""

    width_km: float
    height_km: float

    def __post_init__(self) -> None:
        ensure_positive(self.width_km, "width_km")
        ensure_positive(self.height_km, "height_km")

    @property
    def area_km2(self) -> float:
        """Total study area in square kilometres."""
        return self.width_km * self.height_km

    def cell_size_km(self, resolution: int) -> Tuple[float, float]:
        """(width, height) of one cell at ``resolution`` cells per side."""
        ensure_positive(resolution, "resolution")
        return self.width_km / resolution, self.height_km / resolution


@dataclass(frozen=True)
class GridSpec:
    """A square grid of ``resolution x resolution`` cells over the unit square."""

    resolution: int

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError(f"resolution must be positive, got {self.resolution}")

    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        return self.resolution * self.resolution

    def cell_of(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map normalised coordinates to (row, col) cell indices."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if np.any((x < 0) | (x >= 1) | (y < 0) | (y >= 1)):
            raise ValueError("coordinates must lie in [0, 1)")
        col = np.minimum((x * self.resolution).astype(int), self.resolution - 1)
        row = np.minimum((y * self.resolution).astype(int), self.resolution - 1)
        return row, col

    def flat_index(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Row-major flat index of (row, col) cells."""
        row = np.asarray(row, dtype=int)
        col = np.asarray(col, dtype=int)
        if np.any((row < 0) | (row >= self.resolution) | (col < 0) | (col >= self.resolution)):
            raise ValueError("cell indices out of range")
        return row * self.resolution + col

    def cell_center(self, row: int, col: int) -> Tuple[float, float]:
        """Normalised (x, y) centre of cell (row, col)."""
        if not (0 <= row < self.resolution and 0 <= col < self.resolution):
            raise ValueError("cell indices out of range")
        return (col + 0.5) / self.resolution, (row + 0.5) / self.resolution

    def histogram(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Count points per cell; returns a ``(resolution, resolution)`` array."""
        if len(np.asarray(x)) == 0:
            return np.zeros((self.resolution, self.resolution))
        row, col = self.cell_of(x, y)
        flat = np.bincount(self.flat_index(row, col), minlength=self.num_cells)
        return flat.reshape(self.resolution, self.resolution).astype(float)


def aggregate_counts(fine: np.ndarray, factor: int) -> np.ndarray:
    """Sum-pool the trailing two axes of ``fine`` by ``factor``.

    ``fine`` may have any number of leading axes (days, slots, ...); the last
    two axes must be divisible by ``factor``.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    fine = np.asarray(fine, dtype=float)
    rows, cols = fine.shape[-2], fine.shape[-1]
    if rows % factor != 0 or cols % factor != 0:
        raise ValueError(
            f"grid of shape {rows}x{cols} cannot be aggregated by factor {factor}"
        )
    new_shape = fine.shape[:-2] + (rows // factor, factor, cols // factor, factor)
    return fine.reshape(new_shape).sum(axis=(-3, -1))


def disaggregate_uniform(coarse: np.ndarray, factor: int) -> np.ndarray:
    """Spread each coarse cell's value uniformly over a ``factor x factor`` block.

    This realises the paper's maximum-entropy assumption: the predicted count
    of an MGrid is divided equally among its HGrids.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    coarse = np.asarray(coarse, dtype=float)
    expanded = np.repeat(np.repeat(coarse, factor, axis=-2), factor, axis=-1)
    return expanded / float(factor * factor)


@dataclass(frozen=True)
class GridLayout:
    """Joint MGrid/HGrid layout for one candidate ``n`` under a total budget ``N``.

    Attributes
    ----------
    num_mgrids:
        ``n`` — number of MGrids (perfect square).
    hgrids_per_mgrid:
        ``m`` — HGrids per MGrid (perfect square), the minimum satisfying
        ``n * m >= N``.
    mgrid_side:
        ``sqrt(n)``.
    hgrid_side:
        ``sqrt(m)`` — HGrid subdivisions per MGrid side.
    fine_resolution:
        ``sqrt(n) * sqrt(m)`` — the per-side resolution of the HGrid lattice
        induced by this layout (>= ``sqrt(N)``).
    """

    num_mgrids: int
    hgrids_per_mgrid: int

    def __post_init__(self) -> None:
        ensure_perfect_square(self.num_mgrids, "num_mgrids")
        ensure_perfect_square(self.hgrids_per_mgrid, "hgrids_per_mgrid")

    @property
    def mgrid_side(self) -> int:
        """Number of MGrids per side."""
        return math.isqrt(self.num_mgrids)

    @property
    def hgrid_side(self) -> int:
        """Number of HGrids per MGrid side."""
        return math.isqrt(self.hgrids_per_mgrid)

    @property
    def fine_resolution(self) -> int:
        """HGrid lattice resolution per side."""
        return self.mgrid_side * self.hgrid_side

    @property
    def total_hgrids(self) -> int:
        """Total number of HGrids (``n * m``)."""
        return self.num_mgrids * self.hgrids_per_mgrid

    @staticmethod
    def for_ogss(num_mgrids: int, total_hgrid_budget: int) -> "GridLayout":
        """Layout for candidate ``n`` under HGrid budget ``N`` (Algorithm 3, line 1).

        ``m`` is ``ceil(sqrt(N / n))^2``: the smallest perfect square such that
        every MGrid is subdivided finely enough for ``n * m >= N``.
        """
        n = ensure_perfect_square(num_mgrids, "num_mgrids")
        big_n = ensure_perfect_square(total_hgrid_budget, "total_hgrid_budget")
        side_n = math.isqrt(n)
        side_big = math.isqrt(big_n)
        hgrid_side = max(1, math.ceil(side_big / side_n))
        return GridLayout(num_mgrids=n, hgrids_per_mgrid=hgrid_side * hgrid_side)

    def mgrid_alpha_blocks(self, alpha_fine: np.ndarray) -> np.ndarray:
        """Group fine-resolution alpha grids into per-MGrid blocks.

        Parameters
        ----------
        alpha_fine:
            Array of shape ``(..., fine_resolution, fine_resolution)``; any
            leading axes (e.g. one grid per time slot) are preserved.

        Returns
        -------
        Array of shape ``(..., num_mgrids, hgrids_per_mgrid)`` where row ``i``
        holds the alphas of all HGrids inside MGrid ``i`` (row-major MGrid
        order).
        """
        alpha_fine = np.asarray(alpha_fine, dtype=float)
        expected = (self.fine_resolution, self.fine_resolution)
        if alpha_fine.ndim < 2 or alpha_fine.shape[-2:] != expected:
            raise ValueError(
                f"alpha grid must have trailing shape {expected}, got {alpha_fine.shape}"
            )
        lead = alpha_fine.shape[:-2]
        side, sub = self.mgrid_side, self.hgrid_side
        blocks = alpha_fine.reshape(lead + (side, sub, side, sub))
        blocks = np.moveaxis(blocks, -3, -2)
        return blocks.reshape(lead + (self.num_mgrids, self.hgrids_per_mgrid))

    def aggregate_to_mgrids(self, fine: np.ndarray) -> np.ndarray:
        """Sum a fine-resolution tensor down to MGrid resolution."""
        return aggregate_counts(fine, self.hgrid_side)

    def spread_to_hgrids(self, coarse: np.ndarray) -> np.ndarray:
        """Spread an MGrid-resolution tensor uniformly down to HGrid resolution."""
        return disaggregate_uniform(coarse, self.hgrid_side)


def candidate_mgrid_sides(total_hgrid_budget: int, min_side: int = 1) -> list[int]:
    """All candidate ``sqrt(n)`` values for a budget ``N``: ``min_side .. sqrt(N)``."""
    big_n = ensure_perfect_square(total_hgrid_budget, "total_hgrid_budget")
    max_side = math.isqrt(big_n)
    if min_side < 1:
        raise ValueError("min_side must be >= 1")
    if min_side > max_side:
        raise ValueError(
            f"min_side {min_side} exceeds the maximum side {max_side} allowed by N"
        )
    return list(range(min_side, max_side + 1))
