"""Per-time-slot grid-size tuning (extension of the paper's Figure 18 analysis).

The paper observes that the optimal ``n`` differs across the time slots of a
day because the demand pattern — and therefore the expression error — changes
over the day (Figure 18), but its system still deploys a single grid size.
This module provides the natural extension: tune ``n`` per time slot, then
either use the per-slot grids directly or collapse them into one compromise
grid chosen to minimise the summed upper bound across slots.

Two batching optimisations make whole-day tuning cheap: every per-slot
evaluator shares one model-error cache (the model error does not depend on the
alpha slot, so each candidate side trains its model exactly once for the whole
day), and :meth:`SlotwiseGridTuner.expression_error_matrix` probes the
expression error of *all* slots at a candidate side in a single vectorised
pass through :func:`repro.core.expression.total_expression_error_multi`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.expression import ExpressionMethod, total_expression_error_multi
from repro.core.grid import GridLayout
from repro.core.interfaces import DemandPredictor
from repro.core.search import run_search
from repro.core.upper_bound import UpperBoundEvaluator
from repro.data.dataset import EventDataset
from repro.utils.validation import ensure_perfect_square


@dataclass(frozen=True)
class SlotTuningResult:
    """Optimal grid size of a single time slot."""

    slot: int
    best_side: int
    best_value: float
    evaluations: int

    @property
    def best_n(self) -> int:
        """Selected number of MGrids for the slot."""
        return self.best_side * self.best_side


@dataclass(frozen=True)
class SlotwiseTuningReport:
    """Outcome of tuning every requested time slot."""

    results: tuple[SlotTuningResult, ...]
    compromise_side: int
    compromise_value: float

    @property
    def modal_side(self) -> int:
        """The most frequently selected per-slot side."""
        counter = Counter(result.best_side for result in self.results)
        return counter.most_common(1)[0][0]

    def side_distribution(self) -> Dict[int, int]:
        """Histogram of selected sides across slots (the Figure 18 distribution)."""
        counter = Counter(result.best_side for result in self.results)
        return dict(sorted(counter.items()))


class SlotwiseGridTuner:
    """Tunes the grid size independently for each time slot.

    Parameters
    ----------
    dataset, model_factory, hgrid_budget:
        As for :class:`~repro.core.tuner.GridTuner`.
    algorithm:
        OGSS search algorithm used per slot (``"iterative"`` by default).
    search_kwargs:
        Extra keyword arguments for the search (e.g. ``bound``,
        ``initial_side``).
    """

    def __init__(
        self,
        dataset: EventDataset,
        model_factory: Callable[[], DemandPredictor],
        hgrid_budget: int,
        algorithm: str = "iterative",
        min_side: int = 2,
        search_kwargs: Optional[dict] = None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.hgrid_budget = ensure_perfect_square(hgrid_budget, "hgrid_budget")
        self.algorithm = algorithm
        self.min_side = min_side
        self.search_kwargs = dict(search_kwargs or {})
        self._evaluators: Dict[int, UpperBoundEvaluator] = {}
        # Shared across all slot evaluators: the model error depends only on
        # the side, so each candidate side is trained once for the whole day.
        self._model_error_cache: Dict[int, Tuple[float, float]] = {}

    def evaluator_for_slot(self, slot: int) -> UpperBoundEvaluator:
        """The (cached) upper-bound evaluator whose alpha uses ``slot``."""
        if slot not in self._evaluators:
            self._evaluators[slot] = UpperBoundEvaluator(
                dataset=self.dataset,
                model_factory=self.model_factory,
                hgrid_budget=self.hgrid_budget,
                alpha_slot=slot,
                model_error_cache=self._model_error_cache,
            )
        return self._evaluators[slot]

    def expression_error_matrix(
        self,
        slots: Sequence[int],
        sides: Sequence[int],
        method: ExpressionMethod = "auto",
    ) -> np.ndarray:
        """Whole-city expression errors for every (slot, side) pair, batched.

        Stacks the alpha grids of all ``slots`` and evaluates each candidate
        side with one vectorised pass, so the full matrix costs a handful of
        array operations per side instead of ``len(slots)`` scalar sweeps.
        Returns an array of shape ``(len(slots), len(sides))``.

        Example
        -------
        >>> tuner = SlotwiseGridTuner(dataset, model_factory, hgrid_budget=64)
        >>> errors = tuner.expression_error_matrix(slots=range(48), sides=[2, 4, 8])
        """
        if not slots:
            raise ValueError("at least one slot is required")
        if not sides:
            raise ValueError("at least one side is required")
        matrix = np.zeros((len(slots), len(sides)))
        for column, side in enumerate(sides):
            layout = GridLayout.for_ogss(int(side) ** 2, self.hgrid_budget)
            alpha_stack = np.stack(
                [
                    self.dataset.alpha(layout.fine_resolution, slot=int(slot))
                    for slot in slots
                ]
            )
            matrix[:, column] = total_expression_error_multi(alpha_stack, layout, method=method)
        return matrix

    def tune_slot(self, slot: int) -> SlotTuningResult:
        """Tune the grid size for one time slot."""
        evaluator = self.evaluator_for_slot(slot)
        kwargs = dict(self.search_kwargs)
        if self.algorithm == "iterative" and "initial_side" not in kwargs:
            kwargs["initial_side"] = max(2, int(round(self.hgrid_budget**0.5)) // 2)
        result = run_search(
            self.algorithm,
            evaluator,
            self.hgrid_budget,
            min_side=self.min_side,
            **kwargs,
        )
        return SlotTuningResult(
            slot=slot,
            best_side=result.best_side,
            best_value=result.best_value,
            evaluations=result.evaluations,
        )

    def tune(self, slots: Sequence[int]) -> SlotwiseTuningReport:
        """Tune every slot and compute the best single compromise grid size.

        The compromise side minimises the *sum over slots* of the upper bound,
        evaluated over the union of every per-slot winner (so no extra model
        training beyond what the per-slot searches already probed is needed
        for candidates that never won anywhere).
        """
        if not slots:
            raise ValueError("at least one slot is required")
        results = tuple(self.tune_slot(int(slot)) for slot in slots)
        candidates = sorted({result.best_side for result in results})
        best_side = candidates[0]
        best_total = float("inf")
        for side in candidates:
            total = sum(
                self.evaluator_for_slot(result.slot)(side) for result in results
            )
            if total < best_total:
                best_side, best_total = side, total
        return SlotwiseTuningReport(
            results=results,
            compromise_side=best_side,
            compromise_value=best_total,
        )
