"""Model-error estimation (Section III-C, Equation 20).

The total model error over all HGrids equals the total MGrid-level expected
absolute error, which the paper estimates as ``n * MAE(f)`` where ``MAE(f)`` is
the model's mean absolute error per (sample, MGrid) pair.  This module provides
both the per-cell empirical computation and the ``n * MAE`` shortcut, which
agree by construction when the same evaluation samples are used.

Batched counterparts (:func:`mean_absolute_error_batch`,
:func:`total_model_error_batch`) evaluate a whole stack of prediction sets —
one per model, slot or sweep combination — in a single vectorised pass,
mirroring the batched expression-error engine in
:mod:`repro.core.expression`.
"""

from __future__ import annotations

import numpy as np


def mean_absolute_error(predictions: np.ndarray, actual: np.ndarray) -> float:
    """MAE over all (sample, cell) pairs: ``mean |prediction - actual|``."""
    predictions = np.asarray(predictions, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predictions.shape != actual.shape:
        raise ValueError(
            f"predictions and actual must have the same shape, got "
            f"{predictions.shape} vs {actual.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute MAE on empty arrays")
    return float(np.abs(predictions - actual).mean())


def total_model_error_from_mae(mae: float, num_mgrids: int) -> float:
    """Equation 20: total model error ``≈ n * MAE(f)``."""
    if mae < 0:
        raise ValueError("MAE must be non-negative")
    if num_mgrids <= 0:
        raise ValueError("num_mgrids must be positive")
    return float(num_mgrids * mae)


def total_model_error(predictions: np.ndarray, actual: np.ndarray) -> float:
    """Total model error from MGrid-level predictions and actuals.

    Both arrays have shape ``(samples, side, side)``; the result is the sum
    over MGrids of the per-MGrid mean absolute error, identical to
    ``n * MAE`` computed on the same data.
    """
    predictions = np.asarray(predictions, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predictions.ndim == 2:
        predictions = predictions[None, ...]
    if actual.ndim == 2:
        actual = actual[None, ...]
    if predictions.shape != actual.shape:
        raise ValueError(
            f"predictions and actual must have the same shape, got "
            f"{predictions.shape} vs {actual.shape}"
        )
    per_cell = np.abs(predictions - actual).mean(axis=0)
    return float(per_cell.sum())


def mean_absolute_error_batch(predictions: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Per-item MAE over a leading batch axis.

    ``predictions`` and ``actual`` have shape ``(batch, ...)``; the result is a
    ``(batch,)`` array where entry ``b`` equals
    ``mean_absolute_error(predictions[b], actual[b])``.
    """
    predictions = np.asarray(predictions, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predictions.shape != actual.shape:
        raise ValueError(
            f"predictions and actual must have the same shape, got "
            f"{predictions.shape} vs {actual.shape}"
        )
    if predictions.ndim < 1 or predictions.size == 0:
        raise ValueError("cannot compute MAE on empty arrays")
    flat = np.abs(predictions - actual).reshape(predictions.shape[0], -1)
    return flat.mean(axis=1)


def total_model_error_batch(predictions: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Per-item total model error over a leading batch axis.

    Both arrays have shape ``(batch, samples, side, side)`` (a single grid per
    item, ``(batch, side, side)``, is also accepted); entry ``b`` of the result
    equals ``total_model_error(predictions[b], actual[b])``.
    """
    predictions = np.asarray(predictions, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predictions.ndim == 3:
        predictions = predictions[:, None, ...]
    if actual.ndim == 3:
        actual = actual[:, None, ...]
    if predictions.shape != actual.shape:
        raise ValueError(
            f"predictions and actual must have the same shape, got "
            f"{predictions.shape} vs {actual.shape}"
        )
    if predictions.ndim != 4:
        raise ValueError(
            "batched model error expects shape (batch, samples, side, side), "
            f"got {predictions.shape}"
        )
    per_cell = np.abs(predictions - actual).mean(axis=1)
    return per_cell.sum(axis=(1, 2))


def relative_error(predictions: np.ndarray, actual: np.ndarray) -> float:
    """Total absolute error divided by total actual volume (scale-free accuracy)."""
    predictions = np.asarray(predictions, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predictions.shape != actual.shape:
        raise ValueError("predictions and actual must have the same shape")
    total_actual = np.abs(actual).sum()
    if total_actual == 0:
        return 0.0
    return float(np.abs(predictions - actual).sum() / total_actual)
