"""Shared utilities: seeded RNG management, Poisson helpers, validation, timing, caching."""

from repro.utils.cache import ResultCache, canonical_json
from repro.utils.rng import RandomState, default_rng, spawn_rng
from repro.utils.poisson import (
    poisson_pmf,
    poisson_cdf,
    poisson_mean_abs_deviation,
    truncated_poisson_support,
)
from repro.utils.validation import (
    ensure_positive,
    ensure_non_negative,
    ensure_probability,
    ensure_perfect_square,
    ensure_in_range,
)
from repro.utils.timer import Timer, timed

__all__ = [
    "ResultCache",
    "canonical_json",
    "RandomState",
    "default_rng",
    "spawn_rng",
    "poisson_pmf",
    "poisson_cdf",
    "poisson_mean_abs_deviation",
    "truncated_poisson_support",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_probability",
    "ensure_perfect_square",
    "ensure_in_range",
    "Timer",
    "timed",
]
