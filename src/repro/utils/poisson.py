"""Poisson distribution helpers used by the expression-error analysis.

The paper models the number of events in a homogeneous grid (HGrid) as a
Poisson random variable (Section III-B).  The expression-error calculators in
:mod:`repro.core.expression` need stable evaluation of Poisson probability
masses for potentially large means, plus a couple of analytic quantities used
in the tests to validate the algorithms against closed forms.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special


def poisson_pmf(k: np.ndarray | int, mean: float) -> np.ndarray | float:
    """Probability mass ``P(X = k)`` for ``X ~ Poisson(mean)``.

    Evaluated in log space for numerical stability at large means.
    """
    if mean < 0:
        raise ValueError(f"Poisson mean must be non-negative, got {mean}")
    k_arr = np.asarray(k, dtype=float)
    if mean == 0:
        result = np.where(k_arr == 0, 1.0, 0.0)
    else:
        log_pmf = k_arr * math.log(mean) - mean - special.gammaln(k_arr + 1.0)
        result = np.exp(log_pmf)
        result = np.where(k_arr < 0, 0.0, result)
    if np.isscalar(k):
        return float(result)
    return result


def poisson_cdf(k: int, mean: float) -> float:
    """Cumulative probability ``P(X <= k)`` for ``X ~ Poisson(mean)``."""
    if k < 0:
        return 0.0
    if mean == 0:
        return 1.0
    return float(special.pdtr(k, mean))


def poisson_mean_abs_deviation(mean: float) -> float:
    """Mean absolute deviation ``E|X - mean|`` of ``X ~ Poisson(mean)``.

    Closed form: ``2 * mean^(floor(mean)+1) * exp(-mean) / floor(mean)!``
    (Crow 1958).  Used by property tests as an independent check of the
    expression-error calculators in the single-HGrid limit.
    """
    if mean < 0:
        raise ValueError(f"Poisson mean must be non-negative, got {mean}")
    if mean == 0:
        return 0.0
    floor_mean = math.floor(mean)
    log_value = (
        math.log(2.0)
        + (floor_mean + 1) * math.log(mean)
        - mean
        - special.gammaln(floor_mean + 1.0)
    )
    return float(math.exp(log_value))


def truncated_poisson_support(mean: float, coverage: float = 1.0 - 1e-9) -> int:
    """Smallest ``K`` such that ``P(X <= K) >= coverage`` for ``X ~ Poisson(mean)``.

    The expression-error series (Equation 7 of the paper) is truncated at a
    hyper-parameter ``K``; this helper picks a ``K`` large enough that the
    truncation error is negligible for a given mean.
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    if mean <= 0:
        return 1
    k = int(mean)
    while poisson_cdf(k, mean) < coverage:
        k = max(k + 1, int(k * 1.5))
    return k


def sample_inhomogeneous_counts(
    rates: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw independent Poisson counts with per-cell ``rates``.

    Thin wrapper kept here so the data substrate and the tests share a single
    sampling path.
    """
    rates = np.asarray(rates, dtype=float)
    if np.any(rates < 0):
        raise ValueError("all rates must be non-negative")
    return rng.poisson(rates)
