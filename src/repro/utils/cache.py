"""Persistent on-disk result cache keyed by parameter hashes.

Expensive computations — OGSS searches, upper-bound curves, whole benchmark
sweeps — are deterministic functions of their parameters (city preset, scale,
days, seed, model, budget, ...).  :class:`ResultCache` memoises such results
across processes: the parameters are hashed into a stable key and the result
is stored as canonical JSON under ``<root>/<key>.json``, so a second run with
the same parameters reads the bytes back instead of recomputing.

Writes are atomic (temp file + rename) so a crashed or parallel run never
leaves a truncated entry behind, and the canonical encoding (sorted keys, no
whitespace) makes a cache entry byte-identical across runs of the same
computation.

Example
-------
>>> cache = ResultCache("~/.cache/gridtuner")
>>> key = ResultCache.key_for({"city": "nyc_like", "budget": 256, "seed": 7})
>>> if (result := cache.get(key)) is None:
...     result = run_expensive_search()
...     cache.put(key, result)
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

#: Filename stem produced by :meth:`ResultCache.key_for` — a sha256 hexdigest.
_KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")

#: Sentinel distinguishing "unreadable" from a cached ``None``/``null`` value.
_UNREADABLE = object()


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, minimal separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """A directory of canonical-JSON result files keyed by parameter hashes.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) if missing.  ``~`` is
        expanded.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(payload: Mapping[str, Any]) -> str:
        """Stable hex key for a JSON-serialisable parameter mapping."""
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """Path of the cache file backing ``key`` (whether or not it exists)."""
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.root / f"{key}.json"

    def _load(self, key: str) -> Any:
        """Parsed value for ``key``, or :data:`_UNREADABLE` on any failure."""
        try:
            with self.path_for(key).open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return _UNREADABLE

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss.

        Any unreadable entry — missing, corrupted, truncated, wrong encoding,
        bad permissions — degrades to a miss so a damaged cache never aborts
        the computation it memoises.
        """
        value = self._load(key)
        if value is _UNREADABLE:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> Path:
        """Atomically store a JSON-serialisable ``value`` under ``key``."""
        path = self.path_for(key)
        encoded = canonical_json(value)
        # The ".tmp" suffix keeps in-flight files out of the "*.json" globs
        # used by __len__ and clear(), so a killed writer never skews counts.
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        """Membership is consistent with :meth:`get`'s degrade-to-miss contract.

        A corrupt, truncated or otherwise unreadable entry is *not* a member:
        ``key in cache`` is True exactly when ``cache.get(key)`` would hit.
        (The check parses the entry without touching the hit/miss counters.)
        """
        return self._load(key) is not _UNREADABLE

    def _entry_paths(self) -> Iterator[Path]:
        """Regular files whose name is a canonical ``key_for`` entry.

        Restricting to sha256-hex stems keeps :meth:`__len__` and
        :meth:`clear` away from foreign ``*.json`` files (a README, a
        benchmark baseline, ...) that happen to live in the cache directory —
        those were never written by :meth:`put` under a hashed key, and
        ``clear`` must not delete them.
        """
        for path in self.root.glob("*.json"):
            if _KEY_PATTERN.fullmatch(path.stem) and path.is_file():
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every canonical cache entry; returns the number removed.

        Also sweeps any ``.tmp-*`` files orphaned by a killed writer (these
        are never counted as entries).  Foreign files in the cache directory
        are left untouched (see :meth:`_entry_paths`).
        """
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob(".tmp-*"):
            path.unlink(missing_ok=True)
        return removed
