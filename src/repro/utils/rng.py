"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or an
already-constructed :class:`numpy.random.Generator`.  Centralising the
conversion here keeps experiments reproducible: the same seed always yields the
same synthetic city, the same model initialisation and the same dispatch
outcome.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20220322


def default_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or ``None``.

    Parameters
    ----------
    seed:
        ``None`` uses the library-wide default seed (fully deterministic),
        an ``int`` seeds a fresh generator, and an existing generator is
        returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Used when a single experiment fans out into independent sub-experiments
    (e.g. one generator per time slot) so that changing the number of
    sub-experiments does not perturb the random stream of the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    # repro-lint: disable=DET006 -- this IS the spawn primitive: the child seeds are drawn from the parent stream, so the fresh generators are parent-derived, not a second root
    return [np.random.default_rng(int(s)) for s in seeds]


def seed_for(label: str, base_seed: Optional[int] = None) -> int:
    """Derive a stable integer seed from a text label.

    Allows components to obtain distinct but reproducible seeds, e.g.
    ``seed_for("nyc_like/training")``.
    """
    base = _DEFAULT_SEED if base_seed is None else int(base_seed)
    digest = 0
    for char in label:
        digest = (digest * 131 + ord(char)) % (2**31 - 1)
    return (digest ^ base) % (2**31 - 1)
