"""Argument validation helpers shared across the library.

These raise ``ValueError`` with consistent messages so user-facing APIs give
actionable feedback instead of failing deep inside numeric code.
"""

from __future__ import annotations

import math
from typing import Any


def ensure_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``low <= value <= high`` and return ``value``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def ensure_perfect_square(value: int, name: str) -> int:
    """Validate that ``value`` is a positive perfect square and return it.

    The paper restricts the number of model grids ``n`` to perfect squares so
    the city is partitioned into ``sqrt(n) x sqrt(n)`` rectangles.
    """
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    root = math.isqrt(int(value))
    if root * root != value:
        raise ValueError(f"{name} must be a perfect square, got {value!r}")
    return int(value)


def ensure_instance(value: Any, expected_type: type, name: str) -> Any:
    """Validate that ``value`` is an instance of ``expected_type``."""
    if not isinstance(value, expected_type):
        raise TypeError(
            f"{name} must be an instance of {expected_type.__name__}, "
            f"got {type(value).__name__}"
        )
    return value
