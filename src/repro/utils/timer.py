"""Lightweight timing utilities for the experiment harness.

The paper reports wall-clock search cost in Table IV and the expression-error
algorithm cost in Figure 16; :class:`Timer` provides the measurement primitive
used by the corresponding benchmarks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


def wall_clock() -> float:
    """The sanctioned wall-clock read (monotonic, fractional seconds).

    Every latency/elapsed-time measurement outside this module must go
    through this seam instead of calling ``time.*`` directly — the DET001
    lint rule enforces it.  Funnelling the reads through one function keeps
    the deterministic layers provably clock-free and gives replay/test
    harnesses a single monkeypatch point.
    """
    return time.perf_counter()


@dataclass
class Timer:
    """Accumulating timer keyed by label.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("search"):
    ...     _ = sum(range(1000))
    >>> timer.total("search") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds accumulated under ``label`` (0.0 if never measured)."""
        return self.totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label``."""
        return self.counts.get(label, 0)

    def mean(self, label: str) -> float:
        """Mean seconds per measurement under ``label``."""
        count = self.count(label)
        if count == 0:
            return 0.0
        return self.total(label) / count

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.totals.clear()
        self.counts.clear()


@contextmanager
def timed() -> Iterator[dict]:
    """Standalone timing context; yields a dict whose ``"seconds"`` is filled on exit."""
    result: dict = {"seconds": None}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
