"""Plain-text reporting helpers for the experiment harness.

The paper reports its results as figures and tables; the benchmark harness
prints the corresponding series as aligned text tables so the trends (who wins,
where the minimum falls, how large the improvement is) can be read directly
from the benchmark output and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Format rows as a fixed-width text table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(series: Mapping[object, object], title: str | None = None) -> str:
    """Format a key -> value mapping as a two-column table."""
    return format_table(
        ["key", "value"], [(key, value) for key, value in series.items()], title=title
    )


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
