"""Dispatch case study: Figures 6-9 and Table III.

The case study measures how the grid size ``n`` used by the prediction model
affects downstream dispatching:

* task assignment with POLAR (served orders) and LS (revenue) — Figures 6-8,
* route planning with DAIF (served requests, unified cost) — Figure 9,
* Table III — improvement obtained by moving from the "original" grid size the
  source papers used to the optimal grid size found by GridTuner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.grid import GridLayout
from repro.core.interfaces import evaluation_targets
from repro.dispatch.daif import DAIFPlanner, spawn_vehicles
from repro.dispatch.demand import (
    PredictedDemandProvider,
    orders_from_events,
    requests_from_events,
)
from repro.dispatch.entities import DispatchMetrics
from repro.dispatch.ls import LSDispatcher
from repro.dispatch.polar import POLARDispatcher
from repro.dispatch.simulator import TaskAssignmentSimulator, spawn_drivers
from repro.dispatch.travel import TravelModel
from repro.experiments.context import ExperimentContext
from repro.prediction.oracle import PerfectPredictor
from repro.utils.rng import default_rng, seed_for


@dataclass(frozen=True)
class CaseStudyPoint:
    """Dispatch metrics obtained with predictions made at one grid size."""

    mgrid_side: int
    metrics: DispatchMetrics

    @property
    def num_mgrids(self) -> int:
        """``n = side**2``."""
        return self.mgrid_side * self.mgrid_side


def _demand_provider(
    context: ExperimentContext,
    city: str,
    model: str,
    side: int,
    surrogate: bool,
) -> PredictedDemandProvider:
    """Predicted demand for the test day at MGrid side ``side``."""
    dataset = context.dataset(city)
    layout = GridLayout.for_ogss(side * side, context.config.hgrid_budget)
    test_days = list(dataset.split.test_days)
    targets = evaluation_targets(dataset, test_days)
    if model == "real_data":
        predictor = PerfectPredictor()
        predictor.fit(dataset, side)
        predictions = predictor.predict(dataset, side, targets)
    else:
        tuner = context.tuner(city, model, surrogate=surrogate)
        predictions = tuner.predicted_demand(side, test_days)
    # The simulator addresses slots of the test day relative to day 0.
    rebased_targets = [(0, slot) for (_, slot) in targets]
    return PredictedDemandProvider(layout, predictions, rebased_targets)


def run_task_assignment(
    context: ExperimentContext,
    city: str,
    dispatcher: str,
    model: str,
    sides: Optional[Sequence[int]] = None,
    surrogate: bool = True,
) -> Tuple[CaseStudyPoint, ...]:
    """Figures 6-8: POLAR / LS performance across grid sizes.

    ``dispatcher`` is ``"polar"`` or ``"ls"``; ``model`` is a prediction model
    name or ``"real_data"`` for the oracle series of the paper.
    """
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    dataset = context.dataset(city)
    travel = TravelModel.for_city(dataset.city)
    test_events = dataset.test_events()
    base_seed = seed_for(f"case/{city}/{dispatcher}/{model}", config.seed)
    orders = orders_from_events(
        test_events, day=0, slots=config.case_study_slots, seed=base_seed
    )
    fleet_size = context.fleet_size(city)
    points = []
    for side in sides:
        provider = _demand_provider(context, city, model, side, surrogate)
        rng = default_rng(base_seed + side)
        first_slot = config.case_study_slots[0]
        initial_demand = (
            provider.hgrid_demand(0, first_slot)
            if provider.has_slot(0, first_slot)
            else None
        )
        drivers = spawn_drivers(fleet_size, rng, demand_grid=initial_demand)
        policy = POLARDispatcher() if dispatcher == "polar" else LSDispatcher()
        if dispatcher not in ("polar", "ls"):
            raise ValueError(f"unknown dispatcher {dispatcher!r}")
        simulator = TaskAssignmentSimulator(
            policy=policy,
            travel=travel,
            demand=provider,
            seed=base_seed + side,
        )
        metrics = simulator.run(
            orders, drivers, day=0, slots=config.case_study_slots
        )
        points.append(CaseStudyPoint(mgrid_side=side, metrics=metrics))
    return tuple(points)


def run_route_planning(
    context: ExperimentContext,
    city: str,
    model: str,
    sides: Optional[Sequence[int]] = None,
    surrogate: bool = True,
    vehicle_capacity: int = 3,
) -> Tuple[CaseStudyPoint, ...]:
    """Figure 9: DAIF served requests and unified cost across grid sizes."""
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    dataset = context.dataset(city)
    travel = TravelModel.for_city(dataset.city)
    test_events = dataset.test_events()
    base_seed = seed_for(f"route/{city}/{model}", config.seed)
    requests = requests_from_events(
        test_events, day=0, slots=config.case_study_slots, seed=base_seed
    )
    fleet_size = max(3, context.fleet_size(city) // 2)
    points = []
    for side in sides:
        provider = _demand_provider(context, city, model, side, surrogate)
        rng = default_rng(base_seed + side)
        first_slot = config.case_study_slots[0]
        initial_demand = (
            provider.hgrid_demand(0, first_slot)
            if provider.has_slot(0, first_slot)
            else None
        )
        vehicles = spawn_vehicles(
            fleet_size, rng, capacity=vehicle_capacity, demand_grid=initial_demand
        )
        planner = DAIFPlanner(
            travel=travel, demand=provider, seed=base_seed + side
        )
        metrics = planner.run(requests, vehicles, day=0, slots=config.case_study_slots)
        points.append(CaseStudyPoint(mgrid_side=side, metrics=metrics))
    return tuple(points)


@dataclass(frozen=True)
class PromotionRow:
    """One row of Table III: improvement from tuning the grid size."""

    metric: str
    algorithm: str
    optimal_side: int
    original_side: int
    optimal_value: float
    original_value: float

    @property
    def improvement_ratio(self) -> float:
        """Relative improvement of the optimal grid size over the original one.

        For the unified-cost metric lower is better, so the ratio is inverted.
        """
        if self.original_value == 0:
            return 0.0
        if self.metric == "unified_cost":
            return (self.original_value - self.optimal_value) / self.original_value
        return (self.optimal_value - self.original_value) / self.original_value


#: Default grid sides used by the original systems, scaled to the HGrid budget:
#: POLAR used 50x50, LS 16x16 and DAIF 12x12 on a 128x128 HGrid lattice.
_ORIGINAL_SIDE_FRACTIONS = {"polar": 50 / 128, "ls": 16 / 128, "daif": 12 / 128}


def _nearest_side(target: float, sides: Sequence[int]) -> int:
    return min(sides, key=lambda side: abs(side - target))


def table3_promotion(
    context: ExperimentContext,
    city: str = "nyc_like",
    model: str = "deepst",
    sides: Optional[Sequence[int]] = None,
    surrogate: bool = True,
) -> Tuple[PromotionRow, ...]:
    """Table III: performance gain of the optimal grid size for POLAR / LS / DAIF."""
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    budget_side = int(round(config.hgrid_budget**0.5))
    rows = []

    polar_points = run_task_assignment(
        context, city, "polar", model, sides=sides, surrogate=surrogate
    )
    ls_points = run_task_assignment(
        context, city, "ls", model, sides=sides, surrogate=surrogate
    )
    daif_points = run_route_planning(
        context, city, model, sides=sides, surrogate=surrogate
    )

    def add_rows(points: Tuple[CaseStudyPoint, ...], algorithm: str) -> None:
        original_side = _nearest_side(
            _ORIGINAL_SIDE_FRACTIONS[algorithm] * budget_side, sides
        )
        original = next(p for p in points if p.mgrid_side == original_side)
        for metric, key, maximise in (
            ("served_orders", "served_orders", True),
            ("total_revenue", "total_revenue", True),
            ("unified_cost", "unified_cost", False),
        ):
            if algorithm in ("polar", "ls") and metric == "unified_cost":
                continue
            if algorithm == "daif" and metric == "total_revenue":
                continue
            chooser = max if maximise else min
            best = chooser(points, key=lambda p: getattr(p.metrics, key))
            rows.append(
                PromotionRow(
                    metric=metric,
                    algorithm=algorithm,
                    optimal_side=best.mgrid_side,
                    original_side=original.mgrid_side,
                    optimal_value=float(getattr(best.metrics, key)),
                    original_value=float(getattr(original.metrics, key)),
                )
            )

    add_rows(polar_points, "polar")
    add_rows(ls_points, "ls")
    add_rows(daif_points, "daif")
    return tuple(rows)
