"""Search-algorithm evaluation: Table IV, Figure 17 and Figure 18.

Table IV compares Brute-force Search, Ternary Search and the Iterative Method
on three axes: wall-clock cost, the probability of finding the global optimum
(over the time slots of a day, whose differing demand patterns give different
optima), and the *optimal ratio* — how close the dispatch performance obtained
with the selected grid size is to the performance at the true optimum.

Figure 17 sweeps the Iterative Method's search bound ``b``; Figure 18 reports
the distribution of the optimal ``n`` across the time slots of a day.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.search import SearchResult, run_search
from repro.core.upper_bound import UpperBoundEvaluator
from repro.experiments.case_study import run_task_assignment
from repro.experiments.context import ExperimentContext
from repro.utils.timer import wall_clock


def _slot_evaluator(
    context: ExperimentContext, city: str, model: str, slot: int, surrogate: bool
) -> UpperBoundEvaluator:
    """Upper-bound evaluator whose expression error uses the given time slot."""
    dataset = context.dataset(city)
    return UpperBoundEvaluator(
        dataset=dataset,
        model_factory=context.factory(model, surrogate=surrogate),
        hgrid_budget=context.config.hgrid_budget,
        alpha_slot=slot,
    )


@dataclass(frozen=True)
class SlotSearchOutcome:
    """Search results for one time slot."""

    slot: int
    optimal_side: int
    results: Dict[str, SearchResult]
    costs: Dict[str, float]


@dataclass(frozen=True)
class SearchAlgorithmSummary:
    """One row of Table IV."""

    city: str
    algorithm: str
    cost_seconds: float
    probability_optimal: float
    optimal_ratio: float
    mean_evaluations: float


def evaluate_search_algorithms(
    context: ExperimentContext,
    city: str,
    model: str = "deepst",
    slots: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = ("ternary", "iterative", "brute_force"),
    surrogate: bool = True,
    iterative_initial: Optional[int] = None,
    iterative_bound: int = 3,
    compute_optimal_ratio: bool = False,
) -> Tuple[Tuple[SlotSearchOutcome, ...], Tuple[SearchAlgorithmSummary, ...]]:
    """Run the OGSS search algorithms across time slots (Table IV).

    The per-slot optimum differs because the demand pattern (and hence the
    expression error) varies over the day.  ``compute_optimal_ratio=True``
    additionally runs the POLAR dispatch simulation at each algorithm's most
    frequently selected grid size to compute the paper's OR metric; it is off
    by default because it multiplies the runtime.
    """
    config = context.config
    if slots is None:
        slots = config.case_study_slots
    budget_side = int(round(config.hgrid_budget**0.5))
    if iterative_initial is None:
        iterative_initial = max(2, budget_side // 2)

    outcomes = []
    costs: Dict[str, float] = {name: 0.0 for name in algorithms}
    optima_found: Dict[str, int] = {name: 0 for name in algorithms}
    evaluations: Dict[str, int] = {name: 0 for name in algorithms}
    selected_sides: Dict[str, Counter] = {name: Counter() for name in algorithms}
    optimal_sides: Counter = Counter()

    for slot in slots:
        per_slot_results: Dict[str, SearchResult] = {}
        per_slot_costs: Dict[str, float] = {}
        optimal_side: Optional[int] = None
        for algorithm in algorithms:
            evaluator = _slot_evaluator(context, city, model, slot, surrogate)
            kwargs = {}
            if algorithm == "iterative":
                kwargs = {"initial_side": iterative_initial, "bound": iterative_bound}
            start = wall_clock()
            result = run_search(
                algorithm, evaluator, config.hgrid_budget, min_side=2, **kwargs
            )
            elapsed = wall_clock() - start
            per_slot_results[algorithm] = result
            per_slot_costs[algorithm] = elapsed
            costs[algorithm] += elapsed
            evaluations[algorithm] += result.evaluations
            selected_sides[algorithm][result.best_side] += 1
            if algorithm == "brute_force":
                optimal_side = result.best_side
        if optimal_side is None:
            # Brute force not requested: take the best probe seen by any algorithm.
            optimal_side = min(
                (res for res in per_slot_results.values()),
                key=lambda res: res.best_value,
            ).best_side
        optimal_sides[optimal_side] += 1
        for algorithm in algorithms:
            if per_slot_results[algorithm].best_side == optimal_side:
                optima_found[algorithm] += 1
        outcomes.append(
            SlotSearchOutcome(
                slot=slot,
                optimal_side=optimal_side,
                results=per_slot_results,
                costs=per_slot_costs,
            )
        )

    ratios = _optimal_ratios(
        context, city, model, algorithms, selected_sides, optimal_sides, surrogate
    ) if compute_optimal_ratio else {name: 1.0 for name in algorithms}

    summaries = tuple(
        SearchAlgorithmSummary(
            city=city,
            algorithm=algorithm,
            cost_seconds=costs[algorithm],
            probability_optimal=optima_found[algorithm] / len(list(slots)),
            optimal_ratio=ratios[algorithm],
            mean_evaluations=evaluations[algorithm] / len(list(slots)),
        )
        for algorithm in algorithms
    )
    return tuple(outcomes), summaries


def _optimal_ratios(
    context: ExperimentContext,
    city: str,
    model: str,
    algorithms: Sequence[str],
    selected_sides: Dict[str, Counter],
    optimal_sides: Counter,
    surrogate: bool,
) -> Dict[str, float]:
    """OR metric: POLAR served orders at the selected side vs at the optimal side."""
    reference_side = optimal_sides.most_common(1)[0][0]
    cache: Dict[int, float] = {}

    def served(side: int) -> float:
        if side not in cache:
            points = run_task_assignment(
                context, city, "polar", model, sides=[side], surrogate=surrogate
            )
            cache[side] = float(points[0].metrics.served_orders)
        return cache[side]

    reference = served(reference_side)
    ratios: Dict[str, float] = {}
    for algorithm in algorithms:
        side = selected_sides[algorithm].most_common(1)[0][0]
        ratios[algorithm] = served(side) / reference if reference > 0 else 1.0
    return ratios


@dataclass(frozen=True)
class BoundSweepPoint:
    """Figure 17: effect of the Iterative Method's bound ``b``."""

    bound: int
    probability_optimal: float
    mean_evaluations: float
    cost_seconds: float


def iterative_bound_sweep(
    context: ExperimentContext,
    city: str,
    model: str = "deepst",
    bounds: Sequence[int] = (1, 2, 3, 4, 6),
    slots: Optional[Sequence[int]] = None,
    surrogate: bool = True,
) -> Tuple[BoundSweepPoint, ...]:
    """Sweep the Iterative Method's search bound (Figure 17)."""
    config = context.config
    if slots is None:
        slots = config.case_study_slots
    points = []
    for bound in bounds:
        found = 0
        evaluations = 0
        cost = 0.0
        for slot in slots:
            evaluator = _slot_evaluator(context, city, model, slot, surrogate)
            brute = run_search("brute_force", evaluator, config.hgrid_budget, min_side=2)
            evaluator_iter = _slot_evaluator(context, city, model, slot, surrogate)
            start = wall_clock()
            result = run_search(
                "iterative",
                evaluator_iter,
                config.hgrid_budget,
                min_side=2,
                bound=bound,
                initial_side=max(2, int(round(config.hgrid_budget**0.5)) // 2),
            )
            cost += wall_clock() - start
            evaluations += result.evaluations
            if result.best_side == brute.best_side:
                found += 1
        points.append(
            BoundSweepPoint(
                bound=bound,
                probability_optimal=found / len(list(slots)),
                mean_evaluations=evaluations / len(list(slots)),
                cost_seconds=cost,
            )
        )
    return tuple(points)


def optimal_n_distribution(
    context: ExperimentContext,
    city: str,
    model: str = "deepst",
    slots: Optional[Sequence[int]] = None,
    surrogate: bool = True,
) -> Dict[int, int]:
    """Figure 18: histogram of the optimal ``sqrt(n)`` across time slots."""
    config = context.config
    if slots is None:
        slots = config.case_study_slots
    counter: Counter = Counter()
    for slot in slots:
        evaluator = _slot_evaluator(context, city, model, slot, surrogate)
        result = run_search("brute_force", evaluator, config.hgrid_budget, min_side=2)
        counter[result.best_side] += 1
    return dict(sorted(counter.items()))
