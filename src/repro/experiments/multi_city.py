"""Multi-city OGSS sweep experiment (production-scale extension).

The paper tunes each city in isolation; a deployed system re-tunes the whole
(city x model x slot) matrix regularly.  This module binds the
:mod:`repro.sweep` runner to the experiment configuration profiles so the
sweep runs at the same scales as the rest of the harness, and is what the
``repro sweep`` CLI subcommand and ``examples/sweep_multi_city.py`` call.

Example
-------
>>> report = run_city_sweep(["nyc_like", "xian_like"], profile="tiny")
>>> report.best_sides()
{('nyc_like', 'historical_average', 16): 8, ('xian_like', ...): 4}
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import get_profile
from repro.experiments.context import CITIES
from repro.sweep import SweepReport, SweepRunner, sweep_tasks

#: Short CLI-friendly aliases for the city presets.
CITY_ALIASES = {
    "nyc": "nyc_like",
    "chengdu": "chengdu_like",
    "xian": "xian_like",
}


def resolve_city(name: str) -> str:
    """Resolve a preset name or short alias (``nyc`` -> ``nyc_like``)."""
    return CITY_ALIASES.get(name, name)


def run_city_sweep(
    cities: Sequence[str] = CITIES,
    models: Sequence[str] = ("historical_average",),
    slots: Sequence[int] = (16,),
    algorithm: str = "iterative",
    profile: str = "tiny",
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> SweepReport:
    """Run OGSS searches for every (city, model, slot) combination in parallel.

    The dataset scale, history length, HGrid budget and seed come from the
    named experiment ``profile`` so sweep results line up with the figure
    benchmarks run at the same profile.
    """
    config = get_profile(profile)
    tasks = sweep_tasks(
        cities=[resolve_city(city) for city in cities],
        models=models,
        slots=slots,
        algorithm=algorithm,
        hgrid_budget=config.hgrid_budget,
        scale=config.city_scale,
        num_days=config.num_days,
        seed=config.seed,
    )
    return SweepRunner(tasks, cache_dir=cache_dir, max_workers=max_workers).run()
