"""Shared experiment context: cached datasets and tuners per city.

Most experiments need the same objects — a synthetic dataset per city and a
:class:`~repro.core.tuner.GridTuner` per (city, model) pair.  Building the
datasets repeatedly would dominate the runtime of the benchmark suite, so
:class:`ExperimentContext` constructs them lazily and caches them for the
lifetime of the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.core.interfaces import DemandPredictor
from repro.core.tuner import GridTuner
from repro.data.dataset import EventDataset
from repro.data.presets import city_preset
from repro.experiments.config import ExperimentConfig, get_profile
from repro.prediction.registry import model_factory, surrogate_factory
from repro.utils.rng import seed_for

#: The three synthetic cities mirroring the paper's datasets.
CITIES: Tuple[str, ...] = ("nyc_like", "chengdu_like", "xian_like")

#: The three prediction models compared in the paper.
MODELS: Tuple[str, ...] = ("mlp", "deepst", "dmvst_net")


@dataclass
class ExperimentContext:
    """Lazily built, cached datasets and tuners for one configuration profile."""

    config: ExperimentConfig
    _datasets: Dict[str, EventDataset] = field(default_factory=dict, repr=False)
    _tuners: Dict[Tuple[str, str, bool], GridTuner] = field(
        default_factory=dict, repr=False
    )

    @staticmethod
    def from_profile(profile: str = "small") -> "ExperimentContext":
        """Create a context from a named configuration profile."""
        return ExperimentContext(config=get_profile(profile))

    # ------------------------------------------------------------------ #

    def dataset(self, city: str) -> EventDataset:
        """The (cached) synthetic dataset for ``city``."""
        if city not in self._datasets:
            config = city_preset(city, scale=self.config.city_scale)
            self._datasets[city] = EventDataset.from_city(
                config,
                num_days=self.config.num_days,
                seed=seed_for(f"{city}/{self.config.name}", self.config.seed),
            )
        return self._datasets[city]

    def factory(
        self, model: str, surrogate: bool = False, **kwargs
    ) -> Callable[[], DemandPredictor]:
        """Model factory by name; ``surrogate=True`` swaps in the fast surrogate."""
        if surrogate:
            return surrogate_factory(model, seed=seed_for(f"surrogate/{model}", self.config.seed))
        return model_factory(model, **kwargs)

    def tuner(self, city: str, model: str, surrogate: bool = False) -> GridTuner:
        """The (cached) GridTuner for a (city, model) pair."""
        key = (city, model, surrogate)
        if key not in self._tuners:
            self._tuners[key] = GridTuner(
                self.dataset(city),
                self.factory(model, surrogate=surrogate),
                hgrid_budget=self.config.hgrid_budget,
                alpha_slot=self.config.alpha_slot,
            )
        return self._tuners[key]

    def fleet_size(self, city: str) -> int:
        """Number of drivers/vehicles used by the case study for ``city``."""
        dataset = self.dataset(city)
        events = dataset.test_events()
        slot_mask = [
            slot in set(self.config.case_study_slots) for slot in events.slot
        ]
        orders_in_horizon = int(sum(slot_mask))
        fleet = int(round(orders_in_horizon * self.config.drivers_per_100_orders / 100.0))
        return max(fleet, 5)
