"""Experiment harness reproducing every table and figure of the paper's evaluation.

Each module corresponds to one group of figures/tables (see DESIGN.md for the
per-experiment index); the benchmark suite under ``benchmarks/`` calls these
functions and prints the reproduced series.
"""

from repro.experiments.config import (
    ExperimentConfig,
    PROFILES,
    TINY,
    SMALL,
    PAPER,
    get_profile,
)
from repro.experiments.context import CITIES, MODELS, ExperimentContext
from repro.experiments.error_curves import (
    ErrorCurvePoint,
    RealErrorPoint,
    expression_error_curve,
    model_error_curve,
    real_error_curve,
    optimal_side_from_curve,
)
from repro.experiments.case_study import (
    CaseStudyPoint,
    PromotionRow,
    run_task_assignment,
    run_route_planning,
    table3_promotion,
)
from repro.experiments.search_eval import (
    SearchAlgorithmSummary,
    SlotSearchOutcome,
    BoundSweepPoint,
    evaluate_search_algorithms,
    iterative_bound_sweep,
    optimal_n_distribution,
)
from repro.experiments.homogeneity_exp import (
    EffectOfMPoint,
    figure13_uniformity_scatter,
    figure14_dalpha_curve,
    figure15_effect_of_m,
)
from repro.experiments.algorithm_cost import (
    AlgorithmCostPoint,
    BatchCostPoint,
    algorithm_cost_sweep,
    batch_cost_sweep,
)
from repro.experiments.multi_city import CITY_ALIASES, resolve_city, run_city_sweep
from repro.experiments.dataset_size import DatasetSizePoint, dataset_size_sweep
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "PROFILES",
    "TINY",
    "SMALL",
    "PAPER",
    "get_profile",
    "CITIES",
    "MODELS",
    "ExperimentContext",
    "ErrorCurvePoint",
    "RealErrorPoint",
    "expression_error_curve",
    "model_error_curve",
    "real_error_curve",
    "optimal_side_from_curve",
    "CaseStudyPoint",
    "PromotionRow",
    "run_task_assignment",
    "run_route_planning",
    "table3_promotion",
    "SearchAlgorithmSummary",
    "SlotSearchOutcome",
    "BoundSweepPoint",
    "evaluate_search_algorithms",
    "iterative_bound_sweep",
    "optimal_n_distribution",
    "EffectOfMPoint",
    "figure13_uniformity_scatter",
    "figure14_dalpha_curve",
    "figure15_effect_of_m",
    "AlgorithmCostPoint",
    "BatchCostPoint",
    "algorithm_cost_sweep",
    "batch_cost_sweep",
    "CITY_ALIASES",
    "resolve_city",
    "run_city_sweep",
    "DatasetSizePoint",
    "dataset_size_sweep",
    "format_series",
    "format_table",
]
