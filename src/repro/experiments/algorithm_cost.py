"""Expression-error algorithm cost/accuracy study (Figure 16).

The paper compares the straightforward O(m^2 K^3) evaluation, Algorithm 1
(O(m K^2)) and Algorithm 2 (O(m K)) as the truncation parameter ``K`` grows,
showing that Algorithm 2's cost stays flat while the others blow up, and that
accuracy saturates well before the default K = 250.

:func:`batch_cost_sweep` extends the study to the batched engine: a full-city
probe evaluates thousands of HGrids, and the batched calculator
(:func:`repro.core.expression.expression_error_batch`) replaces that many
scalar Algorithm-2 calls with a few vectorised passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.expression import (
    expression_error_algorithm2,
    expression_error_algorithm1,
    expression_error_batch,
    expression_error_reference,
)
from repro.utils.timer import wall_clock


@dataclass(frozen=True)
class AlgorithmCostPoint:
    """Cost and result of the three calculators at one K."""

    k: int
    reference_seconds: float
    algorithm1_seconds: float
    algorithm2_seconds: float
    reference_value: float
    algorithm1_value: float
    algorithm2_value: float

    @property
    def algorithm2_speedup(self) -> float:
        """Speed-up of Algorithm 2 over Algorithm 1."""
        if self.algorithm2_seconds == 0:
            return float("inf")
        return self.algorithm1_seconds / self.algorithm2_seconds

    @property
    def algorithm2_absolute_error(self) -> float:
        """|Algorithm 2 - converged reference| at this K."""
        return abs(self.algorithm2_value - self.reference_value)


def algorithm_cost_sweep(
    alpha_ij: float = 3.0,
    alpha_rest: float = 45.0,
    m: int = 16,
    k_values: Sequence[int] = (10, 20, 40, 80, 120),
    include_algorithm1: bool = True,
) -> Tuple[AlgorithmCostPoint, ...]:
    """Figure 16: runtime and value of each calculator as K grows.

    ``include_algorithm1=False`` skips the slow scalar-loop transliteration for
    quick test runs.
    """
    if m <= 1:
        raise ValueError("m must be at least 2 for a meaningful comparison")
    points = []
    for k in k_values:
        start = wall_clock()
        reference_value = expression_error_reference(alpha_ij, alpha_rest, m, k=k)
        reference_seconds = wall_clock() - start

        if include_algorithm1:
            start = wall_clock()
            algorithm1_value = expression_error_algorithm1(alpha_ij, alpha_rest, m, k=k)
            algorithm1_seconds = wall_clock() - start
        else:
            algorithm1_value = reference_value
            algorithm1_seconds = 0.0

        start = wall_clock()
        algorithm2_value = expression_error_algorithm2(alpha_ij, alpha_rest, m, k=k)
        algorithm2_seconds = wall_clock() - start

        points.append(
            AlgorithmCostPoint(
                k=int(k),
                reference_seconds=reference_seconds,
                algorithm1_seconds=algorithm1_seconds,
                algorithm2_seconds=algorithm2_seconds,
                reference_value=reference_value,
                algorithm1_value=algorithm1_value,
                algorithm2_value=algorithm2_value,
            )
        )
    return tuple(points)


@dataclass(frozen=True)
class BatchCostPoint:
    """Scalar-loop vs batched-engine cost for one city-probe size."""

    num_cells: int
    scalar_seconds: float
    batch_seconds: float
    max_abs_difference: float

    @property
    def batch_speedup(self) -> float:
        """Speed-up of the batched engine over the per-cell scalar loop."""
        if self.batch_seconds == 0:
            return float("inf")
        return self.scalar_seconds / self.batch_seconds


def batch_cost_sweep(
    num_cells_values: Sequence[int] = (256, 1024, 4096),
    m: int = 4,
    k: int = 60,
    seed: int = 0,
) -> Tuple[BatchCostPoint, ...]:
    """Cost of a whole-city expression-error probe: scalar loop vs batched.

    For each probe size, draws ``num_cells`` random (alpha_ij, alpha_rest)
    pairs and computes every per-HGrid error twice: once with a Python loop of
    scalar Algorithm-2 calls (the seed implementation of a city probe) and
    once with a single :func:`expression_error_batch` call sharing one
    truncation ``k``.  Also reports the largest absolute disagreement, which
    should sit at floating-point level.
    """
    if m <= 1:
        raise ValueError("m must be at least 2 for a meaningful comparison")
    rng = np.random.default_rng(seed)
    points = []
    for num_cells in num_cells_values:
        alpha_ij = rng.uniform(0.0, 8.0, size=int(num_cells))
        alpha_rest = rng.uniform(0.0, 8.0 * (m - 1), size=int(num_cells))
        # Full-size warm-up pass so the timed run measures compute, not the
        # one-off page-fault cost of first touching the pmf tables.
        expression_error_batch(alpha_ij, m, rest=alpha_rest, k=k, method="algorithm2")

        start = wall_clock()
        scalar_values = np.array(
            [
                expression_error_algorithm2(float(a), float(r), m, k=k)
                for a, r in zip(alpha_ij, alpha_rest)
            ]
        )
        scalar_seconds = wall_clock() - start

        start = wall_clock()
        batch_values = expression_error_batch(
            alpha_ij, m, rest=alpha_rest, k=k, method="algorithm2"
        )
        batch_seconds = wall_clock() - start

        points.append(
            BatchCostPoint(
                num_cells=int(num_cells),
                scalar_seconds=scalar_seconds,
                batch_seconds=batch_seconds,
                max_abs_difference=float(np.abs(scalar_values - batch_values).max()),
            )
        )
    return tuple(points)
