"""Experiment configuration profiles.

The paper runs at full city scale (128 x 128 HGrids, up to 76 x 76 MGrids,
months of trip data, GPU-trained models).  The same code paths are exercised
here at configurable scale; three named profiles are provided:

* ``tiny``   — seconds; used by the unit/integration tests,
* ``small``  — a couple of minutes; default for the benchmark harness,
* ``paper``  — the paper-scale parameters (kept for completeness; running it
  requires hours of CPU time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import ensure_perfect_square


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale parameters shared by all experiments.

    Attributes
    ----------
    name:
        Profile name.
    city_scale:
        Fraction of the real cities' daily order volume to simulate.
    num_days:
        Days of history to generate (train + validation + test).
    hgrid_budget:
        Total HGrid budget ``N``.
    mgrid_sides:
        Candidate ``sqrt(n)`` values swept by the error-curve experiments.
        Divisors of ``sqrt(N)`` are used so expression errors are compared on
        the same HGrid lattice.
    alpha_slot:
        Time slot used for alpha estimation (08:00-08:30 by default).
    case_study_slots:
        Slots simulated by the dispatch case study (the morning peak).
    drivers_per_100_orders:
        Fleet size as a fraction of the simulated order volume.
    seed:
        Base random seed.
    """

    name: str
    city_scale: float
    num_days: int
    hgrid_budget: int
    mgrid_sides: Tuple[int, ...]
    search_sides: Tuple[int, int] = (2, 0)
    alpha_slot: int = 16
    case_study_slots: Tuple[int, ...] = (16, 17, 18, 19)
    drivers_per_100_orders: float = 12.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.city_scale <= 0:
            raise ValueError("city_scale must be positive")
        if self.num_days < 4:
            raise ValueError("num_days must be at least 4")
        ensure_perfect_square(self.hgrid_budget, "hgrid_budget")
        if not self.mgrid_sides:
            raise ValueError("mgrid_sides must not be empty")
        if self.drivers_per_100_orders <= 0:
            raise ValueError("drivers_per_100_orders must be positive")


TINY = ExperimentConfig(
    name="tiny",
    city_scale=0.005,
    num_days=10,
    hgrid_budget=16 * 16,
    mgrid_sides=(2, 4, 8, 16),
    case_study_slots=(16, 17),
    drivers_per_100_orders=14.0,
)

SMALL = ExperimentConfig(
    name="small",
    city_scale=0.02,
    num_days=21,
    hgrid_budget=32 * 32,
    mgrid_sides=(2, 4, 8, 16, 32),
    case_study_slots=(16, 17, 18, 19),
    drivers_per_100_orders=12.0,
)

PAPER = ExperimentConfig(
    name="paper",
    city_scale=1.0,
    num_days=35,
    hgrid_budget=128 * 128,
    mgrid_sides=(4, 8, 16, 32, 64, 128),
    case_study_slots=tuple(range(48)),
    drivers_per_100_orders=12.0,
)

PROFILES: Dict[str, ExperimentConfig] = {
    "tiny": TINY,
    "small": SMALL,
    "paper": PAPER,
}


def get_profile(name: str) -> ExperimentConfig:
    """Look up a configuration profile by name."""
    try:
        return PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from exc
