"""Effect of the training-set size (Figure 19).

The paper shows that both too little training data (alpha estimates and model
training become noisy) and too much (demand drift makes old data stale) hurt
the downstream crowdsourcing performance, with roughly four weeks being the
sweet spot.  This experiment truncates the training split to a varying number
of weeks and measures the real error and (optionally) the POLAR dispatch
outcome obtained with the tuned grid size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.tuner import GridTuner
from repro.experiments.case_study import run_task_assignment
from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class DatasetSizePoint:
    """Outcome of tuning with a training window of ``weeks`` weeks."""

    weeks: int
    training_days: int
    optimal_side: int
    real_error: float
    upper_bound: float
    served_orders: Optional[int] = None


def dataset_size_sweep(
    context: ExperimentContext,
    city: str = "nyc_like",
    model: str = "deepst",
    weeks: Sequence[int] = (1, 2, 3, 4),
    surrogate: bool = True,
    with_dispatch: bool = False,
) -> Tuple[DatasetSizePoint, ...]:
    """Figure 19: real error (and optionally dispatch outcome) vs training weeks."""
    config = context.config
    base_dataset = context.dataset(city)
    points = []
    for week_count in weeks:
        dataset = base_dataset.with_training_weeks(week_count)
        tuner = GridTuner(
            dataset,
            context.factory(model, surrogate=surrogate),
            hgrid_budget=config.hgrid_budget,
            alpha_slot=config.alpha_slot,
        )
        result = tuner.select("iterative", min_side=2, bound=2,
                              initial_side=max(2, int(round(config.hgrid_budget**0.5)) // 2))
        report = tuner.evaluate_real_error(result.optimal_side)
        served: Optional[int] = None
        if with_dispatch:
            case_points = run_task_assignment(
                context,
                city,
                "polar",
                model,
                sides=[result.optimal_side],
                surrogate=surrogate,
            )
            served = case_points[0].metrics.served_orders
        points.append(
            DatasetSizePoint(
                weeks=int(week_count),
                training_days=len(dataset.split.train_days),
                optimal_side=result.optimal_side,
                real_error=report.real_error,
                upper_bound=report.upper_bound,
                served_orders=served,
            )
        )
    return tuple(points)
