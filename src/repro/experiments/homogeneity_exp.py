"""Homogeneity experiments: Figures 13, 14 and 15.

* Figure 13 — per-MGrid scatter of intra-grid unevenness ``D_alpha(m)`` against
  the summed expression error of the MGrid's HGrids (positively related).
* Figure 14 — ``D_alpha(N)`` against ``N``: grows quickly, then flattens at the
  turning point used to select the HGrid budget.
* Figure 15 — with ``n`` fixed, the effect of increasing ``m`` (finer HGrids)
  on expression / model / real error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.uniformity import UniformityPoint, uniformity_vs_expression_error
from repro.core.errors import decompose_errors
from repro.core.expression import total_expression_error
from repro.core.grid import GridLayout
from repro.core.homogeneity import DAlphaCurve, d_alpha_curve
from repro.core.interfaces import actual_counts_for_targets, evaluation_targets
from repro.experiments.context import ExperimentContext


def figure13_uniformity_scatter(
    context: ExperimentContext,
    city: str = "nyc_like",
    mgrid_side: int = 8,
    hgrid_side: int = 4,
) -> Tuple[UniformityPoint, ...]:
    """Per-MGrid (D_alpha, expression error) scatter (Figure 13)."""
    dataset = context.dataset(city)
    layout = GridLayout(
        num_mgrids=mgrid_side * mgrid_side,
        hgrids_per_mgrid=hgrid_side * hgrid_side,
    )
    return tuple(
        uniformity_vs_expression_error(
            dataset, layout, slot=context.config.alpha_slot
        )
    )


def figure14_dalpha_curve(
    context: ExperimentContext,
    city: str = "nyc_like",
    resolutions: Sequence[int] = (4, 8, 16, 32, 64),
    training_weeks: Optional[int] = None,
) -> DAlphaCurve:
    """D_alpha(N) against the HGrid resolution (Figure 14).

    ``training_weeks`` optionally restricts the alpha-estimation window, which
    reproduces the paper's observation that with too little (or too stale) data
    the curve keeps growing past the true turning point because the alpha
    estimates themselves become noisy.
    """
    dataset = context.dataset(city)
    if training_weeks is not None:
        dataset = dataset.with_training_weeks(training_weeks)
    return d_alpha_curve(
        lambda resolution: dataset.alpha(resolution, slot=context.config.alpha_slot),
        resolutions,
    )


@dataclass(frozen=True)
class EffectOfMPoint:
    """Figure 15: errors at fixed ``n`` and increasing ``m``."""

    hgrid_side: int
    hgrids_per_mgrid: int
    expression_error: float
    model_error: float
    real_error: float


def figure15_effect_of_m(
    context: ExperimentContext,
    city: str = "nyc_like",
    mgrid_side: int = 4,
    hgrid_sides: Sequence[int] = (1, 2, 4, 8),
    model: str = "deepst",
    surrogate: bool = True,
) -> Tuple[EffectOfMPoint, ...]:
    """Expression / model / real error while ``n`` is fixed and ``m`` grows."""
    dataset = context.dataset(city)
    tuner = context.tuner(city, model, surrogate=surrogate)
    model_instance = tuner.model_factory()
    model_instance.fit(dataset, mgrid_side)
    targets = evaluation_targets(dataset, list(dataset.split.test_days))
    predictions = model_instance.predict(dataset, mgrid_side, targets)
    points = []
    for hgrid_side in hgrid_sides:
        layout = GridLayout(
            num_mgrids=mgrid_side * mgrid_side,
            hgrids_per_mgrid=hgrid_side * hgrid_side,
        )
        alpha = dataset.alpha(layout.fine_resolution, slot=context.config.alpha_slot)
        expression = total_expression_error(alpha, layout)
        actual_fine = actual_counts_for_targets(
            dataset, layout.fine_resolution, targets
        )
        report = decompose_errors(predictions, actual_fine, layout)
        points.append(
            EffectOfMPoint(
                hgrid_side=hgrid_side,
                hgrids_per_mgrid=layout.hgrids_per_mgrid,
                expression_error=expression,
                model_error=report.model_error,
                real_error=report.real_error,
            )
        )
    return tuple(points)
