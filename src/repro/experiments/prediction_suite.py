"""Predictor-sweep experiment (Figure 4/5-style model comparisons at scale).

Binds the :mod:`repro.sweep.prediction` runner to the experiment
configuration profiles, the same way :mod:`repro.experiments.dispatch_suite`
binds the dispatch suite.  A suite run fans (city x model x resolution x
seed) predictor trainings through worker threads (or processes) with a
persistent result cache, so ``repro predict`` replays model-accuracy
comparisons byte-stably from cache.

Example
-------
>>> report = run_prediction_suite(["nyc"], models=["mlp"], profile="tiny")
>>> {o.scenario.label: o.mae for o in report.outcomes}
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.config import get_profile
from repro.experiments.multi_city import resolve_city
from repro.sweep.prediction import (
    PredictionSuiteReport,
    PredictionSuiteRunner,
    predictor_scenarios,
)

#: Default models swept by the suite: the paper's three neural predictors
#: plus the historical-average baseline.
DEFAULT_MODELS = ("historical_average", "mlp")

#: Default MGrid resolutions the predictors are trained at.
DEFAULT_RESOLUTIONS = (8,)


def run_prediction_suite(
    cities: Sequence[str] = ("nyc",),
    models: Sequence[str] = DEFAULT_MODELS,
    resolutions: Iterable[int] = DEFAULT_RESOLUTIONS,
    seeds: Iterable[int] = (7,),
    profile: str = "tiny",
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    hyper: Sequence[tuple] = (),
) -> PredictionSuiteReport:
    """Train/evaluate every (city, model, resolution, seed) scenario in parallel.

    The dataset scale and history length come from the named experiment
    ``profile`` so suite results line up with the figure benchmarks run at
    the same profile; ``hyper`` tuples are forwarded to every scenario (and
    applied only to models whose factory accepts them).
    """
    config = get_profile(profile)
    scenarios = predictor_scenarios(
        cities=[resolve_city(city) for city in cities],
        models=models,
        resolutions=resolutions,
        seeds=seeds,
        scale=config.city_scale,
        num_days=config.num_days,
        hyper=tuple(hyper),
    )
    return PredictionSuiteRunner(
        scenarios,
        cache_dir=cache_dir,
        max_workers=max_workers,
        executor=executor,
    ).run()
