"""Orchestrated load runs against the always-on dispatch service.

:func:`run_service_load` is the single entry point shared by the ``repro
loadgen`` CLI verb, ``benchmarks/bench_service.py`` and the nightly soak
workflow: it builds (or connects to) a service, replays the scenario's
seeded order stream through the open-loop load generator, drains, and —
when an ingest log was recorded — replays the log offline to verify the
determinism bridge (live metrics == offline ``engine.run`` metrics,
bit-for-bit).

The report separates the three concerns the gates care about:

* ``loadgen`` — offered load (wall clock, client side);
* ``service`` — sustained throughput, admission→assignment latency
  percentiles, peak pending backlog (wall clock, server side);
* ``replay`` — the rate-independent simulation outcome and its equality
  flag (no wall clock at all).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence

from repro.dispatch.scenarios import DispatchScenario, build_scenario_bundle
from repro.service.ingest import replay_ingest_log
from repro.service.loadgen import (
    HttpClient,
    InProcessClient,
    LoadPhase,
    RetryPolicy,
    order_payloads,
    run_loadgen,
)
from repro.service.server import DispatchService, ServiceConfig


def metrics_payload_equal(
    live: Dict[str, Any], replay: Dict[str, Any]
) -> bool:
    """Exact (bit-level) equality of two DispatchMetrics payloads."""
    keys = set(live) | set(replay)
    return all(live.get(key) == replay.get(key) for key in keys)


def run_service_load(
    scenario: DispatchScenario,
    phases: Sequence[LoadPhase],
    repeat_days: int = 1,
    max_orders: Optional[int] = None,
    ingest_log: Optional[str] = None,
    max_batch: int = 256,
    cadence_seconds: float = 0.05,
    sparse: str = "auto",
    url: Optional[str] = None,
    check_replay: bool = True,
    max_pending: Optional[int] = None,
    retries: int = 0,
    retry_seed: Optional[int] = None,
    on_phase: Optional[Any] = None,
) -> Dict[str, Any]:
    """Drive one full load run and return the combined report payload.

    With ``url`` unset the service is hosted in-process (the scenario
    bundle is shared between service, generator and replay, so nothing is
    built twice).  With ``url`` set, an already-running ``repro serve``
    instance is driven over HTTP; the bundle is still built locally to
    synthesise the order stream, and the replay check runs whenever
    ``ingest_log`` names a locally readable file (the server's log path).

    ``max_pending`` bounds the in-process service's pending pool (shed
    counts land in both the ``loadgen`` and ``service`` sections of the
    report); ``retries`` arms the HTTP client's seeded backoff (the jitter
    seed defaults to the scenario seed so repeated runs pace identically).
    """
    bundle = build_scenario_bundle(scenario)
    payloads = order_payloads(bundle, repeat_days=repeat_days, max_orders=max_orders)
    service: Optional[DispatchService] = None
    if url is None:
        config = ServiceConfig(
            scenario=scenario,
            sparse=sparse,
            max_batch=max_batch,
            cadence_seconds=cadence_seconds,
            ingest_log=ingest_log,
            max_pending=max_pending,
        )
        service = DispatchService(config, bundle=bundle).start()
        client: Any = InProcessClient(service)
    else:
        retry = None
        if retries > 0:
            retry = RetryPolicy(
                max_retries=retries,
                seed=scenario.seed if retry_seed is None else retry_seed,
            )
        client = HttpClient(url, retry=retry)
    loadgen_result = run_loadgen(client, payloads, phases, on_phase=on_phase)
    service_report = client.drain()
    report: Dict[str, Any] = {
        "scenario": {
            "name": scenario.label,
            "city": scenario.city,
            "policy": scenario.policy,
            "matching": scenario.matching,
            "seed": scenario.seed,
        },
        "orders_offered": len(payloads),
        "repeat_days": repeat_days,
        "phases": [dataclasses.asdict(phase) for phase in phases],
        "loadgen": loadgen_result.to_payload(),
        "service": service_report,
    }
    log_path = service_report.get("ingest_log") or ingest_log
    if check_replay and log_path is not None:
        replay = replay_ingest_log(log_path, bundle=bundle)
        replay_metrics = dataclasses.asdict(replay.metrics)
        report["replay"] = {
            "order_count": replay.order_count,
            "metrics": replay_metrics,
            "replay_equal": metrics_payload_equal(
                service_report["metrics"], replay_metrics
            ),
        }
    return report
