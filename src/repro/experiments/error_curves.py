"""Error-curve experiments: Figures 3, 4 and 5 of the paper.

* Figure 3 — total expression error against the number of MGrids ``n`` for the
  three cities (decreasing in ``n``).
* Figure 4 — total model error against ``n`` for the three prediction models
  (increasing in ``n``; MLP > DeepST > DMVST-Net).
* Figure 5 — empirical real error and its analytic upper bound against ``n``
  (both fall then rise; the better the model, the larger the optimal ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.errors import ErrorReport
from repro.core.expression import total_expression_error
from repro.core.grid import GridLayout
from repro.core.upper_bound import UpperBoundResult
from repro.experiments.context import CITIES, MODELS, ExperimentContext


@dataclass(frozen=True)
class ErrorCurvePoint:
    """One (n, error) point of an error curve."""

    mgrid_side: int
    value: float

    @property
    def num_mgrids(self) -> int:
        """``n = side**2``."""
        return self.mgrid_side * self.mgrid_side


def expression_error_curve(
    context: ExperimentContext,
    cities: Sequence[str] = CITIES,
    sides: Optional[Sequence[int]] = None,
) -> Dict[str, Tuple[ErrorCurvePoint, ...]]:
    """Figure 3: total expression error vs ``n`` for each city."""
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    curves: Dict[str, Tuple[ErrorCurvePoint, ...]] = {}
    for city in cities:
        dataset = context.dataset(city)
        points = []
        for side in sides:
            layout = GridLayout.for_ogss(side * side, config.hgrid_budget)
            alpha = dataset.alpha(layout.fine_resolution, slot=config.alpha_slot)
            error = total_expression_error(alpha, layout)
            points.append(ErrorCurvePoint(mgrid_side=side, value=error))
        curves[city] = tuple(points)
    return curves


def model_error_curve(
    context: ExperimentContext,
    city: str,
    models: Sequence[str] = MODELS,
    sides: Optional[Sequence[int]] = None,
    surrogate: bool = False,
) -> Dict[str, Tuple[ErrorCurvePoint, ...]]:
    """Figure 4: total model error (n * MAE) vs ``n`` per prediction model.

    ``surrogate=True`` replaces neural training with the calibrated noisy
    oracle (see DESIGN.md), which keeps large sweeps tractable while preserving
    the MLP > DeepST > DMVST-Net ordering.
    """
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    curves: Dict[str, Tuple[ErrorCurvePoint, ...]] = {}
    for model in models:
        tuner = context.tuner(city, model, surrogate=surrogate)
        points = []
        for side in sides:
            result: UpperBoundResult = tuner.evaluator.evaluate_side(side)
            points.append(ErrorCurvePoint(mgrid_side=side, value=result.model_error))
        curves[model] = tuple(points)
    return curves


@dataclass(frozen=True)
class RealErrorPoint:
    """Empirical error decomposition plus the analytic upper bound at one ``n``."""

    mgrid_side: int
    real_error: float
    empirical_upper_bound: float
    analytic_upper_bound: float
    model_error: float
    expression_error: float

    @property
    def num_mgrids(self) -> int:
        """``n = side**2``."""
        return self.mgrid_side * self.mgrid_side


def real_error_curve(
    context: ExperimentContext,
    city: str,
    model: str,
    sides: Optional[Sequence[int]] = None,
    surrogate: bool = False,
) -> Tuple[RealErrorPoint, ...]:
    """Figure 5: real error and upper bound vs ``n`` for one (city, model) pair."""
    config = context.config
    sides = tuple(sides or config.mgrid_sides)
    tuner = context.tuner(city, model, surrogate=surrogate)
    points = []
    for side in sides:
        bound = tuner.evaluator.evaluate_side(side)
        report: ErrorReport = tuner.evaluate_real_error(side)
        points.append(
            RealErrorPoint(
                mgrid_side=side,
                real_error=report.real_error,
                empirical_upper_bound=report.upper_bound,
                analytic_upper_bound=bound.total,
                model_error=report.model_error,
                expression_error=report.expression_error,
            )
        )
    return tuple(points)


def optimal_side_from_curve(points: Sequence[RealErrorPoint]) -> int:
    """Side minimising the real error along a Figure 5 curve."""
    if not points:
        raise ValueError("the curve must contain at least one point")
    best = min(points, key=lambda point: point.real_error)
    return best.mgrid_side
