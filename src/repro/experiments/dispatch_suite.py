"""Dispatch scenario-suite experiment (Figures 6-8 replay + stress cases).

Binds the :mod:`repro.sweep.dispatch` runner to the experiment configuration
profiles, the same way :mod:`repro.experiments.multi_city` binds the OGSS
sweep.  A suite run fans (city x policy x fleet size x demand scale x seed)
scenario points through worker threads with a persistent result cache, so
``repro dispatch`` replays Figures 6-8-style dispatch comparisons and the
stress variants (surge demand, small/large fleets) byte-stably from cache.

Example
-------
>>> report = run_dispatch_suite(["nyc"], fleet_sizes=[100], profile="tiny")
>>> {o.scenario.label: o.metrics.served_orders for o in report.outcomes}
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.dispatch.scenarios import lifecycle_scenarios, pathological_scenarios
from repro.experiments.config import get_profile
from repro.experiments.multi_city import resolve_city
from repro.sweep.dispatch import DispatchSuiteRunner, SuiteReport, suite_scenarios

#: Default fleet sizes swept by the suite (per 200-driver reference fleet).
DEFAULT_FLEET_SIZES = (100, 200)

#: Default demand multipliers: normal day and surge.
DEFAULT_DEMAND_SCALES = (1.0, 2.0)

#: Scenario families ``run_dispatch_suite`` can expand: the plain
#: cross-product grid, its lifecycle/churn variants (shift change,
#: overnight skeleton fleet, high-cancellation surge, 2-day carry-over), or
#: the pathological stress variants graduated from the differential fuzzer
#: (offset slot window, trailing empty slots, single-driver micro fleet,
#: one-batch rider patience).
SCENARIO_FAMILIES = ("grid", "lifecycle", "pathological")


def run_dispatch_suite(
    cities: Sequence[str] = ("nyc",),
    policies: Sequence[str] = ("polar", "ls"),
    fleet_sizes: Iterable[int] = DEFAULT_FLEET_SIZES,
    demand_scales: Iterable[float] = DEFAULT_DEMAND_SCALES,
    seeds: Iterable[int] = (7,),
    profile: str = "tiny",
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    engine: str = "vector",
    matching: str = "optimal",
    executor: str = "thread",
    sparse: str = "auto",
    guidance: str = "oracle",
    scenario_family: str = "grid",
    test_days: int = 1,
    fleet_profile: str = "full_day",
    max_wait_minutes: float = 10.0,
) -> SuiteReport:
    """Simulate every (city, policy, fleet, demand, seed) scenario in parallel.

    The dataset scale, history length and case-study slots come from the
    named experiment ``profile`` so suite results line up with the figure
    benchmarks run at the same profile.  ``guidance`` selects the
    repositioning demand source: the realised-demand oracle, ``"none"``, or
    a registered prediction model trained per scenario (see
    :class:`~repro.dispatch.scenarios.DispatchScenario`).

    ``scenario_family="lifecycle"`` expands every grid point into its
    lifecycle/churn variants (:func:`~repro.dispatch.scenarios.lifecycle_scenarios`);
    ``scenario_family="pathological"`` expands it into the fuzzer-graduated
    stress shapes (:func:`~repro.dispatch.scenarios.pathological_scenarios`).
    ``test_days``/``fleet_profile``/``max_wait_minutes`` set the multi-day
    replay length, driver shift roster and rider patience of the grid points
    themselves.
    """
    if scenario_family not in SCENARIO_FAMILIES:
        raise ValueError(f"scenario_family must be one of {SCENARIO_FAMILIES}")
    config = get_profile(profile)
    scenarios = suite_scenarios(
        cities=[resolve_city(city) for city in cities],
        policies=policies,
        fleet_sizes=fleet_sizes,
        demand_scales=demand_scales,
        seeds=seeds,
        scale=config.city_scale,
        num_days=config.num_days,
        slots=tuple(config.case_study_slots),
        hgrid_budget=config.hgrid_budget,
        matching=matching,
        guidance=guidance,
        test_days=test_days,
        fleet_profile=fleet_profile,
        max_wait_minutes=max_wait_minutes,
    )
    if scenario_family == "lifecycle":
        scenarios = [
            variant for base in scenarios for variant in lifecycle_scenarios(base)
        ]
    elif scenario_family == "pathological":
        scenarios = [
            variant for base in scenarios for variant in pathological_scenarios(base)
        ]
    return DispatchSuiteRunner(
        scenarios,
        cache_dir=cache_dir,
        max_workers=max_workers,
        engine=engine,
        executor=executor,
        sparse=sparse,
    ).run()
