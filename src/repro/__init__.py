"""GridTuner reproduction: optimal grid size selection for spatiotemporal prediction.

Reproduction of *"GridTuner: Reinvestigate Grid Size Selection for
Spatiotemporal Prediction Models"* (ICDE 2022).  The package is organised as:

* :mod:`repro.core` -- the paper's contribution: error decomposition, expression
  error calculators, the real-error upper bound and the OGSS search algorithms.
* :mod:`repro.data` -- synthetic spatiotemporal event substrate standing in for
  the NYC / Chengdu / Xi'an taxi datasets.
* :mod:`repro.prediction` -- NumPy reimplementations of the MLP / DeepST /
  DMVST-Net demand models plus baselines and surrogates.
* :mod:`repro.dispatch` -- POLAR / LS / DAIF dispatch simulators for the case
  study.
* :mod:`repro.experiments` -- the harness reproducing every figure and table.
* :mod:`repro.sweep` -- parallel multi-city OGSS sweeps with persistent
  result caching.

Quickstart::

    from repro.data import EventDataset, nyc_like
    from repro.core import GridTuner
    from repro.prediction import model_factory

    dataset = EventDataset.from_city(nyc_like(scale=0.01), num_days=21, seed=7)
    tuner = GridTuner(dataset, model_factory("deepst"), hgrid_budget=32 * 32)
    result = tuner.select("iterative")
    print("optimal number of model grids:", result.optimal_n)
"""

from repro.core import (
    GridTuner,
    TuningResult,
    GridLayout,
    ErrorReport,
    UpperBoundEvaluator,
    UpperBoundResult,
    SearchResult,
)
from repro.data import EventDataset, CityModel, CityConfig
from repro.prediction import (
    MLPPredictor,
    DeepSTPredictor,
    DMVSTNetPredictor,
    HistoricalAveragePredictor,
    model_factory,
)

__version__ = "1.1.0"

__all__ = [
    "GridTuner",
    "TuningResult",
    "GridLayout",
    "ErrorReport",
    "UpperBoundEvaluator",
    "UpperBoundResult",
    "SearchResult",
    "EventDataset",
    "CityModel",
    "CityConfig",
    "MLPPredictor",
    "DeepSTPredictor",
    "DMVSTNetPredictor",
    "HistoricalAveragePredictor",
    "model_factory",
    "__version__",
]
