"""Bipartite matching primitives shared by the dispatchers.

All matchers consume a dense ``(orders, drivers)`` cost or weight matrix —
typically produced by :meth:`~repro.dispatch.travel.TravelModel.pairwise_km` —
and return an ``order index -> driver index`` mapping.  The mappings preserve
a deterministic iteration order (ascending rows for the matrix solvers,
ascending cost for the greedy matcher), which the vectorized engine relies on
to accumulate metrics in the same float-addition order as the scalar engine.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment


def greedy_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Greedy minimum-cost matching of rows (orders) to columns (drivers).

    Pairs are taken in increasing cost order; each row and column is used at
    most once and pairs with cost above ``max_cost`` are discarded.  O(E log E).

    Exact cost ties are broken by flat (row-major) matrix position — a stable
    sort rather than introsort — so the selection is fully specified by the
    matrix contents, never by NumPy's sort internals.  Tied candidate
    distances do occur at fleet scale (e.g. two drivers exactly equidistant
    from an order), and an unspecified tie order would make cached scenario
    results unstable across NumPy versions.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    rows, cols = np.unravel_index(np.argsort(cost, axis=None, kind="stable"), cost.shape)
    matched_rows: set[int] = set()
    matched_cols: set[int] = set()
    assignment: Dict[int, int] = {}
    for row, col in zip(rows, cols):
        if cost[row, col] > max_cost:
            break
        if row in matched_rows or col in matched_cols:
            continue
        assignment[int(row)] = int(col)
        matched_rows.add(int(row))
        matched_cols.add(int(col))
    return assignment


def optimal_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Hungarian-algorithm matching minimising total cost, filtered by ``max_cost``.

    Infeasible pairs (cost above ``max_cost``) are masked with a large penalty
    and dropped from the returned assignment.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    finite_max = np.nanmax(cost[np.isfinite(cost)]) if np.isfinite(cost).any() else 1.0
    penalty = max(finite_max, max_cost if np.isfinite(max_cost) else finite_max) * 10 + 1.0
    padded = np.where(np.isfinite(cost) & (cost <= max_cost), cost, penalty)
    row_indices, col_indices = linear_sum_assignment(padded)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if padded[row, col] < penalty:
            assignment[int(row)] = int(col)
    return assignment


def greedy_pairs(
    cost: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`greedy_matching` returning ``(rows, cols)`` pair arrays.

    Produces exactly :func:`greedy_matching`'s assignment (identical stable
    argsort permutation over the identical matrix, identical acceptance rule)
    in its dict-insertion order (ascending cost), but stops scanning as soon
    as ``min(rows, cols)`` pairs are matched — every later candidate would be
    rejected anyway — instead of walking all ``R*C`` sorted pairs.
    """
    empty = np.empty(0, dtype=np.intp)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return empty, empty.copy()
    n_rows, n_cols = cost.shape
    flat = cost.ravel()
    order = np.argsort(cost, axis=None, kind="stable")
    row_used = bytearray(n_rows)
    col_used = bytearray(n_cols)
    out_rows: list = []
    out_cols: list = []
    limit = min(n_rows, n_cols)
    for index in order:
        index = int(index)
        if flat[index] > max_cost:
            break
        row, col = divmod(index, n_cols)
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = 1
        col_used[col] = 1
        out_rows.append(row)
        out_cols.append(col)
        if len(out_rows) == limit:
            break
    if not out_rows:
        return empty, empty.copy()
    return np.array(out_rows, dtype=np.intp), np.array(out_cols, dtype=np.intp)


def greedy_pairs_masked(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy matching that sorts only the feasible entries.

    Selection-equivalent to ``greedy_pairs(np.where(feasible, cost, np.inf),
    max_cost)`` for finite ``max_cost``: both scans visit the feasible pairs
    in ascending (cost, row-major position) order — the compressed stable
    sort preserves the dense stable sort's relative order of ties because
    ``np.nonzero`` walks the mask row-major — and the infeasible (infinite)
    tail is never reached because it exceeds ``max_cost``.  With an infinite
    ``max_cost`` the dense scan would go on to match infeasible pairs, so
    this kernel requires a finite cut-off.  ``cost`` must be finite wherever
    ``feasible`` is True.
    """
    empty = np.empty(0, dtype=np.intp)
    if cost.size == 0:
        return empty, empty.copy()
    rows_f, cols_f = np.nonzero(feasible)
    if rows_f.size == 0:
        return empty, empty.copy()
    values = cost[feasible]
    order = np.argsort(values, kind="stable")
    n_rows, n_cols = cost.shape
    row_used = bytearray(n_rows)
    col_used = bytearray(n_cols)
    out_rows: list = []
    out_cols: list = []
    limit = min(n_rows, n_cols)
    # The scan usually stops after a handful of accepted pairs, so it reads
    # the sorted candidates lazily instead of materialising Python lists of
    # every feasible entry.
    for index in order:
        if values[index] > max_cost:
            break
        row = int(rows_f[index])
        col = int(cols_f[index])
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = 1
        col_used[col] = 1
        out_rows.append(row)
        out_cols.append(col)
        if len(out_rows) == limit:
            break
    if not out_rows:
        return empty, empty.copy()
    return np.array(out_rows, dtype=np.intp), np.array(out_cols, dtype=np.intp)


def min_cost_pairs(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`optimal_matching` over a pre-computed feasibility mask.

    Equivalent to ``optimal_matching(np.where(feasible, cost, np.inf),
    max_cost)`` — it builds the *identical* padded matrix (same penalty value,
    same masked entries), so :func:`scipy.optimize.linear_sum_assignment`
    returns the identical solution — but skips the redundant ``isfinite``
    passes and fancy-indexed copies of the generic entry point.  ``cost`` must
    be finite wherever ``feasible`` is True.  Returns ``(rows, cols)`` index
    arrays sorted by row, matching the dict iteration order of
    :func:`optimal_matching`.
    """
    if cost.size == 0 or (not np.isfinite(max_cost) and not feasible.any()):
        # optimal_matching pads an all-infeasible matrix entirely with the
        # penalty and then filters every pair out; with a finite max_cost the
        # all-infeasible case needs no early exit because the penalty below
        # degrades to optimal_matching's value and every pair gets filtered.
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy()
    # Equals optimal_matching's nanmax over the feasible entries (and -inf
    # when none are feasible, in which case the finite max_cost alone
    # determines the penalty, exactly as the generic entry point's
    # placeholder finite_max=1.0 <= max_cost would).
    masked = np.where(feasible, cost, -np.inf)
    finite_max = float(masked.max())
    penalty = max(finite_max, max_cost if np.isfinite(max_cost) else finite_max) * 10 + 1.0
    if finite_max <= max_cost:
        # Every feasible entry already clears max_cost, so the combined mask
        # reduces to `feasible` — same padded matrix, one pass fewer.
        padded = np.where(feasible, cost, penalty)
    else:
        padded = np.where(feasible & (cost <= max_cost), cost, penalty)
    row_indices, col_indices = linear_sum_assignment(padded)
    keep = padded[row_indices, col_indices] < penalty
    return row_indices[keep].astype(np.intp, copy=False), col_indices[keep].astype(
        np.intp, copy=False
    )


def max_weight_pairs(
    weight: np.ndarray, feasible: np.ndarray, min_weight: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`maximum_weight_matching` over a pre-computed feasibility mask.

    Equivalent to ``maximum_weight_matching(np.where(feasible, weight,
    -np.inf), min_weight)`` — identical offset, identical cost matrix handed
    to the solver — without the extra masking passes.  ``weight`` must be
    finite wherever ``feasible`` is True.  Returns ``(rows, cols)`` sorted by
    row, matching the dict iteration order of :func:`maximum_weight_matching`.
    """
    empty = np.empty(0, dtype=np.intp)
    if weight.size == 0:
        return empty, empty.copy()
    capped_mask = feasible & (weight >= min_weight)
    capped = np.where(capped_mask, weight, -np.inf)
    best = float(capped.max())
    if best == -np.inf:  # no pair clears min_weight
        return empty, empty.copy()
    offset = best + 1.0
    cost = np.where(capped_mask, offset - weight, offset * 10)
    row_indices, col_indices = linear_sum_assignment(cost)
    keep = capped_mask[row_indices, col_indices]
    return row_indices[keep].astype(np.intp, copy=False), col_indices[keep].astype(
        np.intp, copy=False
    )


def maximum_weight_matching(weight: np.ndarray, min_weight: float = 0.0) -> Dict[int, int]:
    """Maximum-total-weight matching (used by revenue-maximising dispatchers).

    Pairs whose weight is below ``min_weight`` are never matched.
    """
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise ValueError("weight must be a 2-D matrix")
    if weight.size == 0:
        return {}
    capped = np.where(weight >= min_weight, weight, -np.inf)
    finite = capped[np.isfinite(capped)]
    if finite.size == 0:
        return {}
    offset = finite.max() + 1.0
    cost = np.where(np.isfinite(capped), offset - capped, offset * 10)
    row_indices, col_indices = linear_sum_assignment(cost)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if np.isfinite(capped[row, col]):
            assignment[int(row)] = int(col)
    return assignment
