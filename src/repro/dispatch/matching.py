"""Bipartite matching primitives shared by the dispatchers."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment


def greedy_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Greedy minimum-cost matching of rows (orders) to columns (drivers).

    Pairs are taken in increasing cost order; each row and column is used at
    most once and pairs with cost above ``max_cost`` are discarded.  O(E log E).
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    rows, cols = np.unravel_index(np.argsort(cost, axis=None), cost.shape)
    matched_rows: set[int] = set()
    matched_cols: set[int] = set()
    assignment: Dict[int, int] = {}
    for row, col in zip(rows, cols):
        if cost[row, col] > max_cost:
            break
        if row in matched_rows or col in matched_cols:
            continue
        assignment[int(row)] = int(col)
        matched_rows.add(int(row))
        matched_cols.add(int(col))
    return assignment


def optimal_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Hungarian-algorithm matching minimising total cost, filtered by ``max_cost``.

    Infeasible pairs (cost above ``max_cost``) are masked with a large penalty
    and dropped from the returned assignment.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    finite_max = np.nanmax(cost[np.isfinite(cost)]) if np.isfinite(cost).any() else 1.0
    penalty = max(finite_max, max_cost if np.isfinite(max_cost) else finite_max) * 10 + 1.0
    padded = np.where(np.isfinite(cost) & (cost <= max_cost), cost, penalty)
    row_indices, col_indices = linear_sum_assignment(padded)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if padded[row, col] < penalty:
            assignment[int(row)] = int(col)
    return assignment


def maximum_weight_matching(weight: np.ndarray, min_weight: float = 0.0) -> Dict[int, int]:
    """Maximum-total-weight matching (used by revenue-maximising dispatchers).

    Pairs whose weight is below ``min_weight`` are never matched.
    """
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise ValueError("weight must be a 2-D matrix")
    if weight.size == 0:
        return {}
    capped = np.where(weight >= min_weight, weight, -np.inf)
    finite = capped[np.isfinite(capped)]
    if finite.size == 0:
        return {}
    offset = finite.max() + 1.0
    cost = np.where(np.isfinite(capped), offset - capped, offset * 10)
    row_indices, col_indices = linear_sum_assignment(cost)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if np.isfinite(capped[row, col]):
            assignment[int(row)] = int(col)
    return assignment
