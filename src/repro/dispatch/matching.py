"""Bipartite matching primitives shared by the dispatchers.

All matchers consume a dense ``(orders, drivers)`` cost or weight matrix —
typically produced by :meth:`~repro.dispatch.travel.TravelModel.pairwise_km` —
and return an ``order index -> driver index`` mapping.  The mappings preserve
a deterministic iteration order (ascending rows for the matrix solvers,
ascending cost for the greedy matcher), which the vectorized engine relies on
to accumulate metrics in the same float-addition order as the scalar engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment


def greedy_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Greedy minimum-cost matching of rows (orders) to columns (drivers).

    Pairs are taken in increasing cost order; each row and column is used at
    most once and pairs with cost above ``max_cost`` are discarded.  O(E log E).

    Exact cost ties are broken by flat (row-major) matrix position — a stable
    sort rather than introsort — so the selection is fully specified by the
    matrix contents, never by NumPy's sort internals.  Tied candidate
    distances do occur at fleet scale (e.g. two drivers exactly equidistant
    from an order), and an unspecified tie order would make cached scenario
    results unstable across NumPy versions.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    rows, cols = np.unravel_index(np.argsort(cost, axis=None, kind="stable"), cost.shape)
    matched_rows: set[int] = set()
    matched_cols: set[int] = set()
    assignment: Dict[int, int] = {}
    for row, col in zip(rows, cols):
        if cost[row, col] > max_cost:
            break
        if row in matched_rows or col in matched_cols:
            continue
        assignment[int(row)] = int(col)
        matched_rows.add(int(row))
        matched_cols.add(int(col))
    return assignment


def optimal_matching(cost: np.ndarray, max_cost: float = np.inf) -> Dict[int, int]:
    """Hungarian-algorithm matching minimising total cost, filtered by ``max_cost``.

    Infeasible pairs (cost above ``max_cost``) are masked with a large penalty
    and dropped from the returned assignment.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return {}
    finite_max = np.nanmax(cost[np.isfinite(cost)]) if np.isfinite(cost).any() else 1.0
    penalty = max(finite_max, max_cost if np.isfinite(max_cost) else finite_max) * 10 + 1.0
    padded = np.where(np.isfinite(cost) & (cost <= max_cost), cost, penalty)
    row_indices, col_indices = linear_sum_assignment(padded)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if padded[row, col] < penalty:
            assignment[int(row)] = int(col)
    return assignment


def greedy_pairs(
    cost: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`greedy_matching` returning ``(rows, cols)`` pair arrays.

    Produces exactly :func:`greedy_matching`'s assignment (identical stable
    argsort permutation over the identical matrix, identical acceptance rule)
    in its dict-insertion order (ascending cost), but stops scanning as soon
    as ``min(rows, cols)`` pairs are matched — every later candidate would be
    rejected anyway — instead of walking all ``R*C`` sorted pairs.
    """
    empty = np.empty(0, dtype=np.intp)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return empty, empty.copy()
    n_rows, n_cols = cost.shape
    flat = cost.ravel()
    order = np.argsort(cost, axis=None, kind="stable")
    row_used = bytearray(n_rows)
    col_used = bytearray(n_cols)
    out_rows: list = []
    out_cols: list = []
    limit = min(n_rows, n_cols)
    for index in order:
        index = int(index)
        if flat[index] > max_cost:
            break
        row, col = divmod(index, n_cols)
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = 1
        col_used[col] = 1
        out_rows.append(row)
        out_cols.append(col)
        if len(out_rows) == limit:
            break
    if not out_rows:
        return empty, empty.copy()
    return np.array(out_rows, dtype=np.intp), np.array(out_cols, dtype=np.intp)


def greedy_pairs_masked(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy matching that sorts only the feasible entries.

    Selection-equivalent to ``greedy_pairs(np.where(feasible, cost, np.inf),
    max_cost)`` for finite ``max_cost``: both scans visit the feasible pairs
    in ascending (cost, row-major position) order — the compressed stable
    sort preserves the dense stable sort's relative order of ties because
    ``np.nonzero`` walks the mask row-major — and the infeasible (infinite)
    tail is never reached because it exceeds ``max_cost``.  With an infinite
    ``max_cost`` the dense scan would go on to match infeasible pairs, so
    this kernel requires a finite cut-off.  ``cost`` must be finite wherever
    ``feasible`` is True.
    """
    empty = np.empty(0, dtype=np.intp)
    if cost.size == 0:
        return empty, empty.copy()
    rows_f, cols_f = np.nonzero(feasible)
    if rows_f.size == 0:
        return empty, empty.copy()
    values = cost[feasible]
    order = np.argsort(values, kind="stable")
    n_rows, n_cols = cost.shape
    row_used = bytearray(n_rows)
    col_used = bytearray(n_cols)
    out_rows: list = []
    out_cols: list = []
    limit = min(n_rows, n_cols)
    # The scan usually stops after a handful of accepted pairs, so it reads
    # the sorted candidates lazily instead of materialising Python lists of
    # every feasible entry.
    for index in order:
        if values[index] > max_cost:
            break
        row = int(rows_f[index])
        col = int(cols_f[index])
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = 1
        col_used[col] = 1
        out_rows.append(row)
        out_cols.append(col)
        if len(out_rows) == limit:
            break
    if not out_rows:
        return empty, empty.copy()
    return np.array(out_rows, dtype=np.intp), np.array(out_cols, dtype=np.intp)


def min_cost_pairs(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`optimal_matching` over a pre-computed feasibility mask.

    Equivalent to ``optimal_matching(np.where(feasible, cost, np.inf),
    max_cost)`` — it builds the *identical* padded matrix (same penalty value,
    same masked entries), so :func:`scipy.optimize.linear_sum_assignment`
    returns the identical solution — but skips the redundant ``isfinite``
    passes and fancy-indexed copies of the generic entry point.  ``cost`` must
    be finite wherever ``feasible`` is True.  Returns ``(rows, cols)`` index
    arrays sorted by row, matching the dict iteration order of
    :func:`optimal_matching`.
    """
    if cost.size == 0 or (not np.isfinite(max_cost) and not feasible.any()):
        # optimal_matching pads an all-infeasible matrix entirely with the
        # penalty and then filters every pair out; with a finite max_cost the
        # all-infeasible case needs no early exit because the penalty below
        # degrades to optimal_matching's value and every pair gets filtered.
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy()
    # Equals optimal_matching's nanmax over the feasible entries (and -inf
    # when none are feasible, in which case the finite max_cost alone
    # determines the penalty, exactly as the generic entry point's
    # placeholder finite_max=1.0 <= max_cost would).
    masked = np.where(feasible, cost, -np.inf)
    finite_max = float(masked.max())
    penalty = max(finite_max, max_cost if np.isfinite(max_cost) else finite_max) * 10 + 1.0
    if finite_max <= max_cost:
        # Every feasible entry already clears max_cost, so the combined mask
        # reduces to `feasible` — same padded matrix, one pass fewer.
        padded = np.where(feasible, cost, penalty)
    else:
        padded = np.where(feasible & (cost <= max_cost), cost, penalty)
    row_indices, col_indices = linear_sum_assignment(padded)
    keep = padded[row_indices, col_indices] < penalty
    return row_indices[keep].astype(np.intp, copy=False), col_indices[keep].astype(
        np.intp, copy=False
    )


def max_weight_pairs(
    weight: np.ndarray, feasible: np.ndarray, min_weight: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Lean :func:`maximum_weight_matching` over a pre-computed feasibility mask.

    Equivalent to ``maximum_weight_matching(np.where(feasible, weight,
    -np.inf), min_weight)`` — identical offset, identical cost matrix handed
    to the solver — without the extra masking passes.  ``weight`` must be
    finite wherever ``feasible`` is True.  Returns ``(rows, cols)`` sorted by
    row, matching the dict iteration order of :func:`maximum_weight_matching`.
    """
    empty = np.empty(0, dtype=np.intp)
    if weight.size == 0:
        return empty, empty.copy()
    capped_mask = feasible & (weight >= min_weight)
    capped = np.where(capped_mask, weight, -np.inf)
    best = float(capped.max())
    if best == -np.inf:  # no pair clears min_weight
        return empty, empty.copy()
    offset = best + 1.0
    cost = np.where(capped_mask, offset - weight, offset * 10)
    row_indices, col_indices = linear_sum_assignment(cost)
    keep = capped_mask[row_indices, col_indices]
    return row_indices[keep].astype(np.intp, copy=False), col_indices[keep].astype(
        np.intp, copy=False
    )


# --------------------------------------------------------------------- #
# Component-decomposed (sparse) matching
# --------------------------------------------------------------------- #
#
# The feasibility mask of a dispatch batch is sparse and spatially local:
# an order can only reach drivers inside its wait-tolerance radius, so the
# bipartite feasibility graph falls apart into many small connected
# components.  Matchings never cross components (an infeasible pair is never
# assigned), so each component can be solved independently with the dense
# kernels above on a tiny submatrix instead of one O(n^3) solve over the
# whole (orders x drivers) matrix.
#
# Canonical component ordering (relied on by the vectorized engine and the
# result caches): components are listed by their smallest row (order) index,
# and rows/columns inside a component are ascending.  Submatrices therefore
# preserve the relative row/column order of the dense matrix, and the merged
# pair list is re-sorted into exactly the dense kernel's emission order —
# ascending row for the assignment solvers, ascending (cost, row-major
# position) for the greedy scan.
#
# Equivalence caveat: a Hungarian solve has a unique answer up to ties; when
# two assignments of equal total cost exist *inside one component*, SciPy's
# tie-break on the small submatrix can in principle differ from its
# tie-break on the full padded matrix.  The greedy kernels are exactly
# equivalent by construction (the global stable (cost, position) scan order
# restricted to a component equals the component's own scan order).  The
# engine equivalence suite and the randomized property tests in
# ``tests/dispatch/test_sparse_matching.py`` pin the behaviour on real
# workloads; the dense path remains the oracle.


def edge_components(
    edge_rows: np.ndarray,
    edge_cols: np.ndarray,
    n_rows: int,
    n_cols: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Connected components of a bipartite edge list.

    ``edge_rows[k]``/``edge_cols[k]`` is one feasible (order, driver) pair.
    Returns ``[(rows, cols), ...]`` in the canonical order documented above;
    rows and columns that touch no edge appear in no component (they can
    never be matched).
    """
    edge_rows = np.asarray(edge_rows, dtype=np.intp)
    edge_cols = np.asarray(edge_cols, dtype=np.intp)
    if edge_rows.shape != edge_cols.shape:
        raise ValueError("edge_rows and edge_cols must be equally sized")
    if edge_rows.size == 0:
        return []
    if np.any(edge_rows < 0) or np.any(edge_rows >= n_rows):
        raise ValueError("edge_rows out of range")
    if np.any(edge_cols < 0) or np.any(edge_cols >= n_cols):
        raise ValueError("edge_cols out of range")
    # Compress the column space to the columns that touch an edge, so the
    # propagation below works on arrays sized by the (pruned) edge set
    # rather than the full fleet.
    col_has_edge = np.zeros(n_cols, dtype=bool)
    col_has_edge[edge_cols] = True
    cols_used = np.flatnonzero(col_has_edge)
    col_map = np.empty(n_cols, dtype=np.intp)
    col_map[cols_used] = np.arange(cols_used.size)
    edge_cols_c = col_map[edge_cols]
    # Bipartite min-label propagation, fully vectorised and direct-addressed:
    # every row starts with its own index as label, labels flow
    # row -> column -> row via scatter-min until a fixed point.  Each sweep
    # is two C-level passes over the edge list, and the sweep count is
    # bounded by half the component diameter — a small constant for the
    # spatially-local feasibility graphs this serves (a Python union-find
    # here was the sparse pipeline's hot spot at fleet scale).
    row_label = np.arange(n_rows, dtype=np.intp)
    col_label = np.full(cols_used.size, n_rows, dtype=np.intp)  # sentinel
    while True:
        np.minimum.at(col_label, edge_cols_c, row_label[edge_rows])
        new_row = row_label.copy()
        np.minimum.at(new_row, edge_rows, col_label[edge_cols_c])
        if np.array_equal(new_row, row_label):
            break
        row_label = new_row
    # Rows that touch no edge can never be matched and are dropped.
    row_has_edge = np.zeros(n_rows, dtype=bool)
    row_has_edge[edge_rows] = True
    rows_used = np.flatnonzero(row_has_edge)
    # A component's label is its smallest row index, so ascending labels are
    # already the canonical component order (ascending minimum row).
    uniq = np.unique(row_label[rows_used])
    row_comp = np.searchsorted(uniq, row_label[rows_used])
    # Every used column is connected to at least one row, so its label is
    # always present in ``uniq``.
    col_comp = np.searchsorted(uniq, col_label)
    return list(
        zip(
            _group_by_component(rows_used, row_comp, uniq.size),
            _group_by_component(cols_used, col_comp, uniq.size),
        )
    )


def _group_by_component(
    values: np.ndarray, component: np.ndarray, n_components: int
) -> List[np.ndarray]:
    """Split ascending ``values`` into per-component ascending groups."""
    order = np.argsort(component, kind="stable")
    grouped = values[order]
    bounds = np.cumsum(np.bincount(component, minlength=n_components))
    groups: List[np.ndarray] = []
    low = 0
    for high in bounds.tolist():
        groups.append(grouped[low:high])
        low = high
    return groups


def merge_pairs_by_row(
    rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-order merged component pairs into ascending-row order.

    This is the emission order of :func:`min_cost_pairs` /
    :func:`max_weight_pairs` (``linear_sum_assignment`` returns rows
    ascending, and rows are unique across components).
    """
    order = np.argsort(rows, kind="stable")
    return rows[order], cols[order]


def merge_pairs_by_cost(
    rows: np.ndarray, cols: np.ndarray, costs: np.ndarray, n_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-order merged component pairs into the greedy scan's emission order.

    :func:`greedy_pairs_masked` emits accepted pairs in ascending
    ``(cost, row-major position)`` order; ``n_cols`` is the column count of
    the *dense* matrix so the flat position tie-break matches its stable
    sort exactly.
    """
    flat = rows * n_cols + cols
    order = np.lexsort((flat, costs))
    return rows[order], cols[order]


def _blocked_pairs(
    cost: np.ndarray,
    feasible: np.ndarray,
    solver: Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose ``feasible`` into components and run ``solver`` per block.

    Returns the unmerged ``(rows, cols, costs)`` global pair arrays (in
    canonical component order); callers apply the merge that matches their
    dense kernel's emission order.
    """
    empty = np.empty(0, dtype=np.intp)
    edge_rows, edge_cols = np.nonzero(feasible)
    if edge_rows.size == 0:
        return empty, empty.copy(), np.empty(0, dtype=float)
    out_rows: List[np.ndarray] = []
    out_cols: List[np.ndarray] = []
    out_costs: List[np.ndarray] = []
    for rows, cols in edge_components(edge_rows, edge_cols, *cost.shape):
        sub_cost = cost[np.ix_(rows, cols)]
        sub_feasible = feasible[np.ix_(rows, cols)]
        local_rows, local_cols = solver(sub_cost, sub_feasible)
        if local_rows.size == 0:
            continue
        out_rows.append(rows[local_rows])
        out_cols.append(cols[local_cols])
        out_costs.append(sub_cost[local_rows, local_cols])
    if not out_rows:
        return empty, empty.copy(), np.empty(0, dtype=float)
    return (
        np.concatenate(out_rows),
        np.concatenate(out_cols),
        np.concatenate(out_costs),
    )


def min_cost_pairs_blocked(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Component-decomposed :func:`min_cost_pairs`.

    Solves each connected component of the feasibility graph independently
    and merges the pairs back into ascending-row order.  Output-identical to
    the dense kernel whenever each component's optimum is unique (see the
    module caveat above).
    """
    rows, cols, _ = _blocked_pairs(
        cost, feasible, lambda c, f: min_cost_pairs(c, f, max_cost=max_cost)
    )
    return merge_pairs_by_row(rows, cols)


def max_weight_pairs_blocked(
    weight: np.ndarray, feasible: np.ndarray, min_weight: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Component-decomposed :func:`max_weight_pairs`, merged by ascending row."""
    rows, cols, _ = _blocked_pairs(
        weight, feasible, lambda w, f: max_weight_pairs(w, f, min_weight=min_weight)
    )
    return merge_pairs_by_row(rows, cols)


def greedy_pairs_masked_blocked(
    cost: np.ndarray, feasible: np.ndarray, max_cost: float = np.inf
) -> Tuple[np.ndarray, np.ndarray]:
    """Component-decomposed :func:`greedy_pairs_masked`.

    Exactly equivalent to the dense greedy scan: acceptance conflicts only
    arise within a component, and the global ascending (cost, row-major
    position) merge reproduces the dense stable scan order bit for bit.
    """
    rows, cols, costs = _blocked_pairs(
        cost, feasible, lambda c, f: greedy_pairs_masked(c, f, max_cost=max_cost)
    )
    if rows.size == 0:
        return rows, cols
    return merge_pairs_by_cost(rows, cols, costs, cost.shape[1])


def maximum_weight_matching(weight: np.ndarray, min_weight: float = 0.0) -> Dict[int, int]:
    """Maximum-total-weight matching (used by revenue-maximising dispatchers).

    Pairs whose weight is below ``min_weight`` are never matched.
    """
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise ValueError("weight must be a 2-D matrix")
    if weight.size == 0:
        return {}
    capped = np.where(weight >= min_weight, weight, -np.inf)
    finite = capped[np.isfinite(capped)]
    if finite.size == 0:
        return {}
    offset = finite.max() + 1.0
    cost = np.where(np.isfinite(capped), offset - capped, offset * 10)
    row_indices, col_indices = linear_sum_assignment(cost)
    assignment: Dict[int, int] = {}
    for row, col in zip(row_indices, col_indices):
        if np.isfinite(capped[row, col]):
            assignment[int(row)] = int(col)
    return assignment
