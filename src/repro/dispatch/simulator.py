"""Discrete-time task-assignment simulator.

The simulator advances slot by slot over a test horizon.  At the start of each
slot the dispatcher may *reposition* idle drivers using the predicted HGrid
demand (this is where prediction quality — the real error — enters); within
the slot, orders arrive in small time batches and the dispatcher assigns idle
drivers to them under a maximum-wait constraint.  Orders that cannot be picked
up in time are lost.

The same engine drives both POLAR and LS; they differ only in their
:class:`AssignmentPolicy` (how they reposition and which matching objective
they use).

Two interchangeable engines execute the loop:

* ``engine="vector"`` (default) — the struct-of-arrays engine in
  :mod:`repro.dispatch.engine`, which runs the per-minute steps as batched
  array passes.  Used whenever the policy implements the array kernels
  (POLAR and LS do).
* ``engine="scalar"`` — the original per-``Driver``/``Order`` object loop,
  kept verbatim as the reference oracle; the equivalence tests assert the
  vectorized engine reproduces its :class:`DispatchMetrics` bit for bit under
  the same seed (see the RNG draw-order notes in :mod:`repro.dispatch.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.dispatch.demand import PredictedDemandProvider
from repro.dispatch.engine import (
    VectorizedAssignmentEngine,
    infer_minutes_per_slot,
    supports_array_kernels,
)
from repro.dispatch.entities import (
    DAY_MINUTES,
    DispatchMetrics,
    Driver,
    FleetArrays,
    Order,
    OrderArrays,
)
from repro.dispatch.travel import TravelModel
from repro.utils.rng import RandomState, default_rng


class AssignmentPolicy(Protocol):
    """Strategy interface implemented by POLAR and LS."""

    #: Human-readable policy name used in experiment tables.
    name: str

    def reposition(
        self,
        drivers: Sequence[Driver],
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Move idle drivers based on the predicted demand (in place)."""
        ...

    def assign(
        self,
        orders: Sequence[Order],
        drivers: Sequence[Driver],
        travel: TravelModel,
        minute: float,
    ) -> dict[int, int]:
        """Return a mapping ``order index -> driver index`` for this batch."""
        ...


def spawn_drivers(
    count: int,
    rng: np.random.Generator,
    demand_grid: Optional[np.ndarray] = None,
) -> List[Driver]:
    """Create ``count`` drivers, placed proportionally to ``demand_grid`` if given."""
    if count <= 0:
        raise ValueError("driver count must be positive")
    if demand_grid is None:
        xs = rng.random(count)
        ys = rng.random(count)
    else:
        demand_grid = np.asarray(demand_grid, dtype=float)
        resolution = demand_grid.shape[0]
        probabilities = demand_grid.ravel()
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.full(probabilities.size, 1.0 / probabilities.size)
        else:
            probabilities = probabilities / total
        cells = rng.choice(probabilities.size, size=count, p=probabilities)
        rows, cols = np.divmod(cells, resolution)
        xs = (cols + rng.random(count)) / resolution
        ys = (rows + rng.random(count)) / resolution
    return [Driver(driver_id=i, x=float(xs[i]), y=float(ys[i])) for i in range(count)]


def spawn_fleet(
    count: int,
    rng: np.random.Generator,
    demand_grid: Optional[np.ndarray] = None,
) -> FleetArrays:
    """Array-native :func:`spawn_drivers`: same draws, no ``Driver`` objects.

    Consumes the RNG identically to :func:`spawn_drivers` (whose position
    draws were already array calls), so
    ``FleetArrays.from_drivers(spawn_drivers(n, rng))`` and
    ``spawn_fleet(n, rng)`` are bit-identical for equal generator states.
    """
    if count <= 0:
        raise ValueError("driver count must be positive")
    if demand_grid is None:
        xs = rng.random(count)
        ys = rng.random(count)
    else:
        demand_grid = np.asarray(demand_grid, dtype=float)
        resolution = demand_grid.shape[0]
        probabilities = demand_grid.ravel()
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.full(probabilities.size, 1.0 / probabilities.size)
        else:
            probabilities = probabilities / total
        cells = rng.choice(probabilities.size, size=count, p=probabilities)
        rows, cols = np.divmod(cells, resolution)
        xs = (cols + rng.random(count)) / resolution
        ys = (rows + rng.random(count)) / resolution
    return FleetArrays(
        driver_id=np.arange(count, dtype=np.int64),
        x=xs,
        y=ys,
        available_at=np.zeros(count),
        served_orders=np.zeros(count, dtype=np.int64),
        earned_revenue=np.zeros(count),
    )


@dataclass
class TaskAssignmentSimulator:
    """Runs one dispatch policy over a stream of orders.

    Parameters
    ----------
    policy:
        The dispatcher (POLAR or LS).
    travel:
        Travel model of the city.
    demand:
        Predicted-demand provider; ``None`` disables repositioning entirely
        (a no-prediction baseline).
    batch_minutes:
        Orders are accumulated into batches of this length before matching,
        as in the paper's batched online assignment setting.
    unserved_penalty_km:
        Cost added per unserved order in the unified-cost metric.
    minutes_per_slot:
        Slot length of the order stream in minutes.  ``None`` (default)
        infers it from the orders (see
        :func:`~repro.dispatch.engine.infer_minutes_per_slot`); callers that
        know the dataset's slot configuration — scenario bundles do — should
        pass it explicitly, which sizes offset slot windows (e.g. replaying
        only the evening slots) exactly.
    engine:
        ``"vector"`` (default) runs the struct-of-arrays engine; ``"scalar"``
        forces the original per-object loop.  Policies without array kernels
        always fall back to the scalar loop.
    sparse:
        Matching pipeline of the vectorized engine: ``"auto"`` (default)
        switches to grid-bucketed candidate pruning with component-decomposed
        matching on large batches, ``"always"`` forces it, ``"never"`` keeps
        the dense candidate matrix.  All modes produce identical metrics (the
        dense path is the oracle); ignored by the scalar engine.
    sparse_threshold:
        Batch size (``pending * idle`` cells) at which ``sparse="auto"``
        switches to the sparse pipeline.  ``None`` (default) keeps the
        engine's :data:`~repro.dispatch.engine.SPARSE_AUTO_THRESHOLD`; the
        differential fuzzer lowers it so micro worlds exercise the auto seam.
    """

    policy: AssignmentPolicy
    travel: TravelModel
    demand: Optional[PredictedDemandProvider] = None
    batch_minutes: float = 2.0
    unserved_penalty_km: float = 5.0
    seed: RandomState = None
    engine: str = "vector"
    sparse: str = "auto"
    sparse_threshold: Optional[int] = None
    minutes_per_slot: Optional[float] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.batch_minutes <= 0:
            raise ValueError("batch_minutes must be positive")
        if self.unserved_penalty_km < 0:
            raise ValueError("unserved_penalty_km must be non-negative")
        if self.engine not in ("vector", "scalar"):
            raise ValueError("engine must be 'vector' or 'scalar'")
        if self.sparse not in ("auto", "always", "never"):
            raise ValueError("sparse must be 'auto', 'always' or 'never'")
        if self.sparse_threshold is not None and self.sparse_threshold < 0:
            raise ValueError("sparse_threshold must be non-negative")
        if self.minutes_per_slot is not None and self.minutes_per_slot <= 0:
            raise ValueError("minutes_per_slot must be positive")
        self._rng = default_rng(self.seed)

    def run(
        self,
        orders: Union[
            Sequence[Order], OrderArrays, Sequence[OrderArrays], Sequence[Sequence[Order]]
        ],
        drivers: Union[Sequence[Driver], FleetArrays],
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
        days: Optional[int] = None,
    ) -> DispatchMetrics:
        """Simulate the assignment of ``orders`` to ``drivers``.

        ``slots`` restricts the horizon; by default it is derived from the
        orders themselves.  ``orders``/``drivers`` may be given either as
        entity sequences or directly as struct-of-arrays state
        (:class:`OrderArrays` / :class:`FleetArrays`); array fleets are
        mutated in place, driver objects receive the final state via
        write-back.

        Multi-day replay: ``orders`` may be a sequence of per-day streams
        (one :class:`OrderArrays` or one ``Sequence[Order]`` per day, each
        with day-relative arrival minutes); ``days`` optionally asserts the
        expected length.  Day ``d`` runs ``d * DAY_MINUTES`` later on the
        absolute clock, queries the demand provider for day ``day + d``, and
        fleet state — positions, ``available_at``, per-driver statistics —
        carries across the day boundary.
        """
        if not isinstance(orders, OrderArrays):
            orders = list(orders)
        per_day = self._per_day_streams(orders)
        if days is not None and per_day is not None and days != len(per_day):
            raise ValueError(
                f"days={days} but {len(per_day)} per-day order stream(s) given"
            )
        if days is not None and per_day is None and days != 1:
            raise ValueError("days > 1 requires one order stream per day")
        use_vector = self.engine == "vector" and supports_array_kernels(self.policy)
        if use_vector:
            return self._run_vector(orders, per_day, drivers, day=day, slots=slots)
        if isinstance(drivers, FleetArrays):
            raise ValueError(
                "FleetArrays input requires the vectorized engine and a policy "
                "with array kernels"
            )
        if per_day is None:
            per_day = [orders]
        scalar_days: List[List[Order]] = [
            list(day_orders.to_orders())
            if isinstance(day_orders, OrderArrays)
            else list(day_orders)
            for day_orders in per_day
        ]
        return self._run_scalar(scalar_days, drivers, day=day, slots=slots)

    @staticmethod
    def _per_day_streams(orders) -> Optional[List]:
        """``orders`` as a list of per-day streams, or ``None`` if single-day."""
        if isinstance(orders, OrderArrays):
            return None
        if orders and isinstance(orders[0], (OrderArrays, list, tuple)):
            return list(orders)
        return None

    def _run_vector(
        self,
        orders,
        per_day: Optional[List],
        drivers: Union[Sequence[Driver], FleetArrays],
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
    ) -> DispatchMetrics:
        if per_day is not None:
            day_arrays = [
                day_orders
                if isinstance(day_orders, OrderArrays)
                else OrderArrays.from_orders(day_orders)
                for day_orders in per_day
            ]
            engine_orders: Union[OrderArrays, List[OrderArrays]] = day_arrays
            total = sum(len(a) for a in day_arrays)
        else:
            if not isinstance(orders, OrderArrays):
                orders = OrderArrays.from_orders(orders)
            engine_orders = orders
            total = len(orders)
        if total == 0:
            return DispatchMetrics(0, 0, 0.0, 0.0, 0.0, 0)
        driver_objects: Optional[List[Driver]] = None
        if isinstance(drivers, FleetArrays):
            fleet = drivers
        else:
            driver_objects = list(drivers)
            if not driver_objects:
                raise ValueError("at least one driver is required")
            fleet = FleetArrays.from_drivers(driver_objects)
        engine_kwargs = {}
        if self.sparse_threshold is not None:
            engine_kwargs["sparse_threshold"] = self.sparse_threshold
        engine = VectorizedAssignmentEngine(
            policy=self.policy,
            travel=self.travel,
            demand=self.demand,
            batch_minutes=self.batch_minutes,
            unserved_penalty_km=self.unserved_penalty_km,
            sparse=self.sparse,
            minutes_per_slot=self.minutes_per_slot,
            **engine_kwargs,
        )
        metrics = engine.run(engine_orders, fleet, self._rng, day=day, slots=slots)
        if driver_objects is not None:
            fleet.write_back(driver_objects)
        return metrics

    def _run_scalar(
        self,
        orders_per_day: List[List[Order]],
        drivers: Sequence[Driver],
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
    ) -> DispatchMetrics:
        if sum(len(day_orders) for day_orders in orders_per_day) == 0:
            return DispatchMetrics(0, 0, 0.0, 0.0, 0.0, 0)
        drivers = list(drivers)
        if not drivers:
            raise ValueError("at least one driver is required")
        served = 0
        cancelled = 0
        total_orders = 0
        revenue = 0.0
        travel_km = 0.0
        for offset, day_orders in enumerate(orders_per_day):
            # A day with no orders is skipped entirely (no repositioning
            # draws) — the vectorized engine applies the same rule.
            if not day_orders:
                continue
            day_result = self._run_scalar_day(
                day_orders, drivers, day + offset, offset * DAY_MINUTES, slots
            )
            served += day_result[0]
            cancelled += day_result[1]
            revenue += day_result[2]
            travel_km += day_result[3]
            total_orders += day_result[4]
        unified_cost = travel_km + self.unserved_penalty_km * (total_orders - served)
        return DispatchMetrics(
            served_orders=served,
            total_orders=total_orders,
            total_revenue=revenue,
            total_travel_km=travel_km,
            unified_cost=unified_cost,
            cancelled_orders=cancelled,
        )

    def _run_scalar_day(
        self,
        orders: List[Order],
        drivers: List[Driver],
        day: int,
        day_offset: float,
        slots: Optional[Sequence[int]],
    ) -> Tuple[int, int, float, float, int]:
        """One day of the scalar replay; returns (served, cancelled, revenue, km, total)."""
        if slots is None:
            day_slots: Sequence[int] = sorted({order.slot for order in orders})
        else:
            day_slots = list(slots)
        minutes_per_slot = self._resolve_minutes_per_slot(orders)
        if day_offset:
            # Lift day-relative arrivals onto the absolute replay clock; the
            # same scalar float addition the vectorized engine applies
            # elementwise, on copies so the caller's orders stay untouched.
            orders = [
                replace(order, arrival_minute=order.arrival_minute + day_offset)
                for order in orders
            ]
        served = 0
        cancelled = 0
        revenue = 0.0
        travel_km = 0.0
        for slot in day_slots:
            slot_start = day_offset + slot * minutes_per_slot
            predicted = self._predicted_demand(day, slot)
            self.policy.reposition(drivers, predicted, self.travel, slot_start, self._rng)
            slot_orders = [order for order in orders if order.slot == slot]
            slot_served, slot_cancelled, slot_revenue, slot_km = self._run_slot(
                slot_orders, drivers, slot_start, minutes_per_slot
            )
            served += slot_served
            cancelled += slot_cancelled
            revenue += slot_revenue
            travel_km += slot_km
        total_orders = sum(1 for order in orders if order.slot in set(day_slots))
        return served, cancelled, revenue, travel_km, total_orders

    # ------------------------------------------------------------------ #

    def _resolve_minutes_per_slot(self, orders: Sequence[Order]) -> float:
        # The slot length is exact when configured; otherwise it is inferred
        # from the stream through the same per-order bound as the vectorized
        # engine (identical float arithmetic, so both engines agree bitwise).
        if self.minutes_per_slot is not None:
            return float(self.minutes_per_slot)
        return infer_minutes_per_slot(
            np.array([order.arrival_minute for order in orders], dtype=float),
            np.array([order.slot for order in orders], dtype=float),
        )

    def _predicted_demand(self, day: int, slot: int) -> Optional[np.ndarray]:
        if self.demand is None:
            return None
        if not self.demand.has_slot(day, slot):
            return None
        return self.demand.hgrid_demand(day, slot)

    def _run_slot(
        self,
        slot_orders: List[Order],
        drivers: List[Driver],
        slot_start: float,
        minutes_per_slot: float,
    ) -> tuple[int, int, float, float]:
        served = 0
        cancelled = 0
        revenue = 0.0
        travel_km = 0.0
        if not slot_orders:
            return served, cancelled, revenue, travel_km
        slot_orders = sorted(slot_orders, key=lambda order: order.arrival_minute)
        batch_start = slot_start
        slot_end = slot_start + minutes_per_slot
        pending: List[Order] = []
        order_iter = iter(slot_orders)
        next_order = next(order_iter, None)
        while batch_start < slot_end:
            batch_end = min(batch_start + self.batch_minutes, slot_end)
            while next_order is not None and next_order.arrival_minute < batch_end:
                pending.append(next_order)
                next_order = next(order_iter, None)
            if pending:
                batch_served, batch_cancelled, batch_revenue, batch_km, pending = (
                    self._assign_batch(pending, drivers, batch_end)
                )
                served += batch_served
                cancelled += batch_cancelled
                revenue += batch_revenue
                travel_km += batch_km
            batch_start = batch_end
        return served, cancelled, revenue, travel_km

    def _assign_batch(
        self, pending: List[Order], drivers: List[Driver], minute: float
    ) -> tuple[int, int, float, float, List[Order]]:
        # Drop orders that have waited past their tolerance; each drop is a
        # rider cancellation, counted once.
        alive = [
            order
            for order in pending
            if minute - order.arrival_minute <= order.max_wait_minutes
        ]
        cancelled = len(pending) - len(alive)
        idle = [driver for driver in drivers if driver.is_idle(minute)]
        if not alive or not idle:
            return 0, cancelled, 0.0, 0.0, alive
        assignment = self.policy.assign(alive, idle, self.travel, minute)
        served = 0
        revenue = 0.0
        travel_km = 0.0
        assigned_orders: set[int] = set()
        for order_index, driver_index in assignment.items():
            order = alive[order_index]
            driver = idle[driver_index]
            pickup_km = self.travel.distance_km(driver.x, driver.y, order.x, order.y)
            pickup_minutes = self.travel.minutes(pickup_km)
            wait = minute + pickup_minutes - order.arrival_minute
            if wait > order.max_wait_minutes:
                continue
            trip_km = self.travel.distance_km(
                order.x, order.y, order.dropoff_x, order.dropoff_y
            )
            trip_minutes = self.travel.minutes(trip_km)
            driver.assign(order, pickup_minutes, trip_minutes)
            served += 1
            revenue += order.revenue
            travel_km += pickup_km + trip_km
            assigned_orders.add(order_index)
        remaining = [
            order for index, order in enumerate(alive) if index not in assigned_orders
        ]
        return served, cancelled, revenue, travel_km, remaining
