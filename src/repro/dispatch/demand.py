"""Demand views for the dispatchers: order streams and predicted HGrid demand.

The dispatch algorithms consume two things:

* the realised orders of the test day (built from the event log), and
* a per-slot *predicted* demand grid at HGrid resolution, obtained by spreading
  the MGrid-level prediction uniformly (exactly the quantity whose quality the
  real error measures).

:func:`orders_from_events` and :func:`requests_from_events` convert the test
split's events into simulation entities; :class:`PredictedDemandProvider`
serves the spread predictions slot by slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.grid import GridLayout
from repro.core.interfaces import DaySlot
from repro.data.events import EventLog
from repro.dispatch.entities import Order, OrderArrays, RideRequest
from repro.utils.rng import RandomState, default_rng


def orders_from_events(
    events: EventLog,
    day: int = 0,
    slots: Optional[Sequence[int]] = None,
    max_wait_minutes: float = 10.0,
    seed: RandomState = None,
) -> List[Order]:
    """Convert one day of events into :class:`Order` objects sorted by arrival time.

    Arrival minutes are jittered uniformly inside each slot, since the event
    log only records the slot.
    """
    rng = default_rng(seed)
    mask = events.day == day
    if slots is not None:
        mask &= np.isin(events.slot, np.asarray(list(slots), dtype=int))
    indices = np.nonzero(mask)[0]
    minutes_per_slot = events.slots.minutes_per_slot
    orders: List[Order] = []
    for order_id, index in enumerate(indices):
        slot = int(events.slot[index])
        arrival = slot * minutes_per_slot + float(rng.uniform(0.0, minutes_per_slot))
        orders.append(
            Order(
                order_id=order_id,
                slot=slot,
                arrival_minute=arrival,
                x=float(events.x[index]),
                y=float(events.y[index]),
                dropoff_x=float(events.dropoff_x[index]),
                dropoff_y=float(events.dropoff_y[index]),
                revenue=float(events.revenue[index]),
                max_wait_minutes=max_wait_minutes,
            )
        )
    orders.sort(key=lambda order: order.arrival_minute)
    return orders


def order_arrays_from_events(
    events: EventLog,
    day: int = 0,
    slots: Optional[Sequence[int]] = None,
    max_wait_minutes: float = 10.0,
    seed: RandomState = None,
) -> OrderArrays:
    """Build :class:`OrderArrays` straight from the event log, no objects.

    The vectorized counterpart of :func:`orders_from_events`: arrival jitter
    is drawn with one ``rng.uniform`` array call (the same bit-generator
    stream as the scalar per-order draws), and the columns are stable-sorted
    by arrival minute, so
    ``OrderArrays.from_orders(orders_from_events(...))`` and this function
    produce identical arrays for the same seed.
    """
    rng = default_rng(seed)
    mask = events.day == day
    if slots is not None:
        mask &= np.isin(events.slot, np.asarray(list(slots), dtype=int))
    indices = np.nonzero(mask)[0]
    minutes_per_slot = events.slots.minutes_per_slot
    slot = events.slot[indices].astype(np.int64)
    arrival = slot * minutes_per_slot + rng.uniform(
        0.0, minutes_per_slot, size=indices.size
    )
    order = np.argsort(arrival, kind="stable")
    return OrderArrays(
        order_id=np.arange(indices.size, dtype=np.int64)[order],
        slot=slot[order],
        arrival_minute=arrival[order],
        x=events.x[indices][order].astype(float),
        y=events.y[indices][order].astype(float),
        dropoff_x=events.dropoff_x[indices][order].astype(float),
        dropoff_y=events.dropoff_y[indices][order].astype(float),
        revenue=events.revenue[indices][order].astype(float),
        max_wait_minutes=np.full(indices.size, float(max_wait_minutes)),
    )


def requests_from_events(
    events: EventLog,
    day: int = 0,
    slots: Optional[Sequence[int]] = None,
    max_wait_minutes: float = 12.0,
    max_detour_factor: float = 1.6,
    seed: RandomState = None,
) -> List[RideRequest]:
    """Convert one day of events into shared-mobility :class:`RideRequest` objects."""
    rng = default_rng(seed)
    base_orders = orders_from_events(
        events, day=day, slots=slots, max_wait_minutes=max_wait_minutes, seed=rng
    )
    return [
        RideRequest(
            request_id=order.order_id,
            slot=order.slot,
            arrival_minute=order.arrival_minute,
            x=order.x,
            y=order.y,
            dropoff_x=order.dropoff_x,
            dropoff_y=order.dropoff_y,
            revenue=order.revenue,
            max_wait_minutes=max_wait_minutes,
            max_detour_factor=max_detour_factor,
        )
        for order in base_orders
    ]


@dataclass
class PredictedDemandProvider:
    """Serves per-slot predicted demand at HGrid resolution.

    Parameters
    ----------
    layout:
        MGrid/HGrid layout the predictions were made under.
    predictions:
        MGrid-level predictions, shape ``(targets, side, side)``.
    targets:
        The (day, slot) pair for each prediction row.
    """

    layout: GridLayout
    predictions: np.ndarray
    targets: Sequence[DaySlot]

    def __post_init__(self) -> None:
        self.predictions = np.asarray(self.predictions, dtype=float)
        side = self.layout.mgrid_side
        if self.predictions.ndim != 3 or self.predictions.shape[1:] != (side, side):
            raise ValueError(
                f"predictions must have shape (targets, {side}, {side}), "
                f"got {self.predictions.shape}"
            )
        if len(self.targets) != self.predictions.shape[0]:
            raise ValueError("targets and predictions must have the same length")
        self._index: Dict[DaySlot, int] = {
            (int(day), int(slot)): i for i, (day, slot) in enumerate(self.targets)
        }

    @property
    def fine_resolution(self) -> int:
        """HGrid resolution of the spread demand grids."""
        return self.layout.fine_resolution

    def has_slot(self, day: int, slot: int) -> bool:
        """True if a prediction exists for (day, slot)."""
        return (int(day), int(slot)) in self._index

    def mgrid_demand(self, day: int, slot: int) -> np.ndarray:
        """MGrid-level predicted demand for (day, slot)."""
        key = (int(day), int(slot))
        if key not in self._index:
            raise KeyError(f"no prediction available for day={day}, slot={slot}")
        return self.predictions[self._index[key]]

    def hgrid_demand(self, day: int, slot: int) -> np.ndarray:
        """Predicted demand spread uniformly to HGrid resolution for (day, slot)."""
        return self.layout.spread_to_hgrids(self.mgrid_demand(day, slot))
