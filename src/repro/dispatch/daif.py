"""DAIF-style demand-aware route planning for shared mobility.

DAIF (Wang et al., VLDB 2020) plans routes for a fleet of shared vehicles
serving ride requests.  Its demand-aware component steers idle vehicles towards
regions of predicted future demand; its planning component inserts each new
request into the route of the vehicle where the insertion causes the smallest
additional travel, subject to capacity, waiting-time and detour constraints.
The metrics match the paper's Figure 9: number of served requests and the
*unified cost* (total travel plus a penalty per unserved request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dispatch.demand import PredictedDemandProvider
from repro.dispatch.entities import DispatchMetrics, RideRequest, Vehicle
from repro.dispatch.travel import TravelModel
from repro.utils.rng import RandomState, default_rng


@dataclass(frozen=True)
class _Stop:
    """A stop on a vehicle route: pick-up or drop-off of a request."""

    request_id: int
    x: float
    y: float
    is_pickup: bool
    revenue: float


def spawn_vehicles(
    count: int,
    rng: np.random.Generator,
    capacity: int = 3,
    demand_grid: Optional[np.ndarray] = None,
) -> List[Vehicle]:
    """Create ``count`` vehicles, optionally placed proportionally to demand."""
    if count <= 0:
        raise ValueError("vehicle count must be positive")
    if demand_grid is None:
        xs = rng.random(count)
        ys = rng.random(count)
    else:
        demand_grid = np.asarray(demand_grid, dtype=float)
        resolution = demand_grid.shape[0]
        probabilities = demand_grid.ravel()
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.full(probabilities.size, 1.0 / probabilities.size)
        else:
            probabilities = probabilities / total
        cells = rng.choice(probabilities.size, size=count, p=probabilities)
        rows, cols = np.divmod(cells, resolution)
        xs = (cols + rng.random(count)) / resolution
        ys = (rows + rng.random(count)) / resolution
    return [
        Vehicle(vehicle_id=i, x=float(xs[i]), y=float(ys[i]), capacity=capacity)
        for i in range(count)
    ]


class DAIFPlanner:
    """Demand-aware insertion-based route planner."""

    name = "daif"

    def __init__(
        self,
        travel: TravelModel,
        demand: Optional[PredictedDemandProvider] = None,
        reposition_fraction: float = 0.3,
        max_reposition_km: float = 5.0,
        unserved_penalty_km: float = 6.0,
        seed: RandomState = None,
    ) -> None:
        if not 0.0 <= reposition_fraction <= 1.0:
            raise ValueError("reposition_fraction must be in [0, 1]")
        if max_reposition_km <= 0:
            raise ValueError("max_reposition_km must be positive")
        if unserved_penalty_km < 0:
            raise ValueError("unserved_penalty_km must be non-negative")
        self.travel = travel
        self.demand = demand
        self.reposition_fraction = reposition_fraction
        self.max_reposition_km = max_reposition_km
        self.unserved_penalty_km = unserved_penalty_km
        self._rng = default_rng(seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Sequence[RideRequest],
        vehicles: Sequence[Vehicle],
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
    ) -> DispatchMetrics:
        """Plan routes for ``requests`` over the given slots and return metrics."""
        if not requests:
            return DispatchMetrics(0, 0, 0.0, 0.0, 0.0)
        vehicles = list(vehicles)
        if not vehicles:
            raise ValueError("at least one vehicle is required")
        if slots is None:
            slots = sorted({request.slot for request in requests})
        served = 0
        revenue = 0.0
        for slot in slots:
            self._reposition_idle(vehicles, day, slot)
            slot_requests = sorted(
                (request for request in requests if request.slot == slot),
                key=lambda request: request.arrival_minute,
            )
            for request in slot_requests:
                if self._insert_request(request, vehicles):
                    served += 1
                    revenue += request.revenue
        travel_km = float(sum(vehicle.travelled_km for vehicle in vehicles))
        total = sum(1 for request in requests if request.slot in set(slots))
        unified_cost = travel_km + self.unserved_penalty_km * (total - served)
        return DispatchMetrics(
            served_orders=served,
            total_orders=total,
            total_revenue=revenue,
            total_travel_km=travel_km,
            unified_cost=unified_cost,
        )

    # ------------------------------------------------------------------ #
    # Demand-aware repositioning of idle vehicles
    # ------------------------------------------------------------------ #

    def _reposition_idle(self, vehicles: List[Vehicle], day: int, slot: int) -> None:
        if self.demand is None or not self.demand.has_slot(day, slot):
            return
        demand_grid = self.demand.hgrid_demand(day, slot)
        resolution = demand_grid.shape[0]
        idle = [vehicle for vehicle in vehicles if not vehicle.route]
        if not idle:
            return
        move_count = int(round(len(idle) * self.reposition_fraction))
        if move_count == 0:
            return
        total = demand_grid.sum()
        if total <= 0:
            return
        probabilities = (demand_grid / total).ravel()
        chosen = self._rng.choice(probabilities.size, size=move_count, p=probabilities)
        for vehicle, cell in zip(idle[:move_count], chosen):
            row, col = divmod(int(cell), resolution)
            target_x = (col + self._rng.random()) / resolution
            target_y = (row + self._rng.random()) / resolution
            distance = self.travel.distance_km(vehicle.x, vehicle.y, target_x, target_y)
            if distance > self.max_reposition_km:
                continue
            vehicle.x = float(np.clip(target_x, 0.0, np.nextafter(1.0, 0.0)))
            vehicle.y = float(np.clip(target_y, 0.0, np.nextafter(1.0, 0.0)))
            vehicle.travelled_km += float(distance)

    # ------------------------------------------------------------------ #
    # Insertion planning
    # ------------------------------------------------------------------ #

    def _insert_request(self, request: RideRequest, vehicles: List[Vehicle]) -> bool:
        """Insert ``request`` into the cheapest feasible vehicle route."""
        best_vehicle: Optional[Vehicle] = None
        best_cost = np.inf
        best_route: Optional[List[_Stop]] = None
        for vehicle in vehicles:
            if not vehicle.has_capacity():
                continue
            candidate = self._best_insertion(vehicle, request)
            if candidate is None:
                continue
            cost, route = candidate
            if cost < best_cost:
                best_cost = cost
                best_vehicle = vehicle
                best_route = route
        if best_vehicle is None or best_route is None:
            return False
        best_vehicle.route = best_route
        best_vehicle.onboard += 1
        best_vehicle.travelled_km += float(best_cost)
        best_vehicle.served_requests += 1
        # Completed stops are flushed immediately in this slot-level model:
        # the vehicle "executes" its route and ends at the last stop.
        self._flush_route(best_vehicle)
        return True

    def _best_insertion(
        self, vehicle: Vehicle, request: RideRequest
    ) -> Optional[Tuple[float, List[_Stop]]]:
        """Cheapest feasible insertion of the request's pick-up and drop-off."""
        pickup = _Stop(request.request_id, request.x, request.y, True, request.revenue)
        dropoff = _Stop(
            request.request_id, request.dropoff_x, request.dropoff_y, False, 0.0
        )
        route = list(vehicle.route)
        base_length = self._route_length(vehicle, route)
        best: Optional[Tuple[float, List[_Stop]]] = None
        direct_km = self.travel.distance_km(
            request.x, request.y, request.dropoff_x, request.dropoff_y
        )
        for i in range(len(route) + 1):
            for j in range(i, len(route) + 1):
                candidate = route[:i] + [pickup] + route[i:j] + [dropoff] + route[j:]
                length = self._route_length(vehicle, candidate)
                added = length - base_length
                if not self._feasible(vehicle, candidate, request, direct_km):
                    continue
                if best is None or added < best[0]:
                    best = (added, candidate)
        return best

    def _route_length(self, vehicle: Vehicle, route: List[_Stop]) -> float:
        length = 0.0
        x, y = vehicle.x, vehicle.y
        for stop in route:
            length += float(self.travel.distance_km(x, y, stop.x, stop.y))
            x, y = stop.x, stop.y
        return length

    def _feasible(
        self,
        vehicle: Vehicle,
        route: List[_Stop],
        request: RideRequest,
        direct_km: float,
    ) -> bool:
        """Check the waiting-time and detour constraints for the new request."""
        x, y = vehicle.x, vehicle.y
        minutes = 0.0
        pickup_minute: Optional[float] = None
        for stop in route:
            minutes += float(self.travel.travel_minutes(x, y, stop.x, stop.y))
            x, y = stop.x, stop.y
            if stop.request_id == request.request_id and stop.is_pickup:
                pickup_minute = minutes
            if stop.request_id == request.request_id and not stop.is_pickup:
                if pickup_minute is None:
                    return False
                if minutes - pickup_minute > self.travel.minutes(
                    direct_km * request.max_detour_factor
                ):
                    return False
        if pickup_minute is None or pickup_minute > request.max_wait_minutes:
            return False
        return True

    def _flush_route(self, vehicle: Vehicle) -> None:
        """Execute the planned route: move the vehicle to the final stop."""
        if not vehicle.route:
            return
        last = vehicle.route[-1]
        vehicle.x = last.x
        vehicle.y = last.y
        vehicle.route = []
        vehicle.onboard = 0
