"""Entities of the dispatch case study: orders, drivers and ride requests.

The paper's case study plugs the tuned predictions into two spatial
crowdsourcing problems — task assignment (POLAR, LS) and route planning
(DAIF).  These dataclasses are the shared vocabulary of the simulators in this
package.  Coordinates are normalised to the unit square, consistent with the
data substrate; travel distances are converted to kilometres via the city
extent held by :class:`~repro.dispatch.travel.TravelModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np


@dataclass
class Order:
    """A taxi order (task) to be assigned to a driver.

    Attributes
    ----------
    order_id:
        Unique identifier.
    slot:
        Time slot in which the order appears.
    arrival_minute:
        Arrival time in minutes from the start of the simulation horizon.
    x, y:
        Pick-up location (normalised).
    dropoff_x, dropoff_y:
        Drop-off location (normalised).
    revenue:
        Fare obtained for serving the order.
    max_wait_minutes:
        The order is cancelled if no driver reaches it within this time.
    """

    order_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.revenue < 0:
            raise ValueError("order revenue must be non-negative")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Driver:
    """A driver (worker) that serves orders.

    ``available_at`` is the minute at which the driver finishes the current
    trip and becomes idle at ``(x, y)``.
    """

    driver_id: int
    x: float
    y: float
    available_at: float = 0.0
    served_orders: int = 0
    earned_revenue: float = 0.0

    def is_idle(self, minute: float) -> bool:
        """True if the driver is free at ``minute``."""
        return self.available_at <= minute

    def assign(self, order: Order, pickup_minutes: float, trip_minutes: float) -> None:
        """Record serving ``order``: move to the drop-off and accumulate stats."""
        if pickup_minutes < 0 or trip_minutes < 0:
            raise ValueError("travel times must be non-negative")
        start = max(self.available_at, order.arrival_minute)
        self.available_at = start + pickup_minutes + trip_minutes
        self.x = order.dropoff_x
        self.y = order.dropoff_y
        self.served_orders += 1
        self.earned_revenue += order.revenue


@dataclass
class RideRequest:
    """A shared-mobility request for the route-planning case study (DAIF)."""

    request_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 12.0
    max_detour_factor: float = 1.6

    def __post_init__(self) -> None:
        if self.max_detour_factor < 1.0:
            raise ValueError("max_detour_factor must be >= 1")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Vehicle:
    """A shared vehicle with a route of pending stops (DAIF)."""

    vehicle_id: int
    x: float
    y: float
    capacity: int = 3
    onboard: int = 0
    route: list = field(default_factory=list)
    available_at: float = 0.0
    served_requests: int = 0
    travelled_km: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("vehicle capacity must be positive")

    def has_capacity(self) -> bool:
        """True if the vehicle can pick up one more rider."""
        return self.onboard < self.capacity


@dataclass
class OrderArrays:
    """Struct-of-arrays view of an order stream (the vectorized engine's input).

    Each attribute is a 1-D :class:`numpy.ndarray` holding one :class:`Order`
    field for every order; row ``i`` of every array describes the same order.
    The arrays are kept sorted by ``arrival_minute`` (stable), matching the
    global ordering :func:`~repro.dispatch.demand.orders_from_events` produces.
    """

    order_id: np.ndarray
    slot: np.ndarray
    arrival_minute: np.ndarray
    x: np.ndarray
    y: np.ndarray
    dropoff_x: np.ndarray
    dropoff_y: np.ndarray
    revenue: np.ndarray
    max_wait_minutes: np.ndarray

    def __post_init__(self) -> None:
        self.order_id = np.asarray(self.order_id, dtype=np.int64)
        self.slot = np.asarray(self.slot, dtype=np.int64)
        for name in (
            "arrival_minute",
            "x",
            "y",
            "dropoff_x",
            "dropoff_y",
            "revenue",
            "max_wait_minutes",
        ):
            setattr(self, name, np.asarray(getattr(self, name), dtype=float))
        sizes = {getattr(self, name).shape for name in self.field_names()}
        if len(sizes) != 1 or next(iter(sizes)) != (len(self),):
            raise ValueError("all order arrays must be 1-D and equally sized")
        if np.any(self.revenue < 0):
            raise ValueError("order revenue must be non-negative")
        if np.any(self.max_wait_minutes <= 0):
            raise ValueError("max_wait_minutes must be positive")

    @staticmethod
    def field_names() -> tuple:
        return (
            "order_id",
            "slot",
            "arrival_minute",
            "x",
            "y",
            "dropoff_x",
            "dropoff_y",
            "revenue",
            "max_wait_minutes",
        )

    def __len__(self) -> int:
        return int(self.order_id.shape[0])

    @classmethod
    def from_orders(cls, orders: Iterable[Order]) -> "OrderArrays":
        """Pack a sequence of :class:`Order` objects into column arrays."""
        orders = list(orders)
        return cls(
            order_id=np.array([o.order_id for o in orders], dtype=np.int64),
            slot=np.array([o.slot for o in orders], dtype=np.int64),
            arrival_minute=np.array([o.arrival_minute for o in orders], dtype=float),
            x=np.array([o.x for o in orders], dtype=float),
            y=np.array([o.y for o in orders], dtype=float),
            dropoff_x=np.array([o.dropoff_x for o in orders], dtype=float),
            dropoff_y=np.array([o.dropoff_y for o in orders], dtype=float),
            revenue=np.array([o.revenue for o in orders], dtype=float),
            max_wait_minutes=np.array([o.max_wait_minutes for o in orders], dtype=float),
        )

    def to_orders(self) -> List[Order]:
        """Materialise :class:`Order` objects (the scalar engine's input)."""
        return [
            Order(
                order_id=int(self.order_id[i]),
                slot=int(self.slot[i]),
                arrival_minute=float(self.arrival_minute[i]),
                x=float(self.x[i]),
                y=float(self.y[i]),
                dropoff_x=float(self.dropoff_x[i]),
                dropoff_y=float(self.dropoff_y[i]),
                revenue=float(self.revenue[i]),
                max_wait_minutes=float(self.max_wait_minutes[i]),
            )
            for i in range(len(self))
        ]


@dataclass
class FleetArrays:
    """Struct-of-arrays driver state mutated in place by the vectorized engine."""

    driver_id: np.ndarray
    x: np.ndarray
    y: np.ndarray
    available_at: np.ndarray
    served_orders: np.ndarray
    earned_revenue: np.ndarray

    def __post_init__(self) -> None:
        self.driver_id = np.asarray(self.driver_id, dtype=np.int64)
        self.served_orders = np.asarray(self.served_orders, dtype=np.int64)
        for name in ("x", "y", "available_at", "earned_revenue"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=float))

    def __len__(self) -> int:
        return int(self.driver_id.shape[0])

    @classmethod
    def from_drivers(cls, drivers: Sequence[Driver]) -> "FleetArrays":
        """Pack :class:`Driver` objects into column arrays."""
        return cls(
            driver_id=np.array([d.driver_id for d in drivers], dtype=np.int64),
            x=np.array([d.x for d in drivers], dtype=float),
            y=np.array([d.y for d in drivers], dtype=float),
            available_at=np.array([d.available_at for d in drivers], dtype=float),
            served_orders=np.array([d.served_orders for d in drivers], dtype=np.int64),
            earned_revenue=np.array([d.earned_revenue for d in drivers], dtype=float),
        )

    def write_back(self, drivers: Sequence[Driver]) -> None:
        """Copy the array state back onto the original :class:`Driver` objects."""
        if len(drivers) != len(self):
            raise ValueError("driver count mismatch")
        for i, driver in enumerate(drivers):
            driver.x = float(self.x[i])
            driver.y = float(self.y[i])
            driver.available_at = float(self.available_at[i])
            driver.served_orders = int(self.served_orders[i])
            driver.earned_revenue = float(self.earned_revenue[i])

    def idle_indices(self, minute: float) -> np.ndarray:
        """Indices of drivers free at ``minute`` (in fleet order)."""
        return np.nonzero(self.available_at <= minute)[0]


@dataclass(frozen=True)
class DispatchMetrics:
    """Aggregate outcome of one dispatch simulation."""

    served_orders: int
    total_orders: int
    total_revenue: float
    total_travel_km: float
    unified_cost: float

    @property
    def service_rate(self) -> float:
        """Fraction of orders served."""
        if self.total_orders == 0:
            return 0.0
        return self.served_orders / self.total_orders
