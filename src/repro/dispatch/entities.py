"""Entities of the dispatch case study: orders, drivers and ride requests.

The paper's case study plugs the tuned predictions into two spatial
crowdsourcing problems — task assignment (POLAR, LS) and route planning
(DAIF).  These dataclasses are the shared vocabulary of the simulators in this
package.  Coordinates are normalised to the unit square, consistent with the
data substrate; travel distances are converted to kilometres via the city
extent held by :class:`~repro.dispatch.travel.TravelModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

#: Length of one simulated day in minutes; shift windows recur on this period.
DAY_MINUTES = 1440.0


def online_mask(
    online_from: np.ndarray, online_until: np.ndarray, minute: float
) -> np.ndarray:
    """Boolean per-driver mask: who is on shift at ``minute``.

    Shift windows are expressed in *minutes of day* and recur daily: a driver
    is online iff ``online_from <= m < online_until`` where
    ``m = minute % DAY_MINUTES``.  A window with ``online_from > online_until``
    wraps past midnight (overnight shift): online iff ``m >= online_from or
    m < online_until``.  The boundary semantics are pinned to match
    ``available_at``'s idle rule — closed at the shift start (a driver whose
    shift opens exactly at the batch minute is dispatchable) and open at the
    shift end.  The default window ``(0, DAY_MINUTES)`` is always online.
    """
    m = minute % DAY_MINUTES
    straight = (online_from <= m) & (m < online_until)
    wrapped = (m >= online_from) | (m < online_until)
    return np.where(online_from <= online_until, straight, wrapped)


@dataclass
class Order:
    """A taxi order (task) to be assigned to a driver.

    Attributes
    ----------
    order_id:
        Unique identifier.
    slot:
        Time slot in which the order appears.
    arrival_minute:
        Arrival time in minutes from the start of the simulation horizon.
    x, y:
        Pick-up location (normalised).
    dropoff_x, dropoff_y:
        Drop-off location (normalised).
    revenue:
        Fare obtained for serving the order.
    max_wait_minutes:
        The order is cancelled if no driver reaches it within this time.
    """

    order_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.revenue < 0:
            raise ValueError("order revenue must be non-negative")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Driver:
    """A driver (worker) that serves orders.

    ``available_at`` is the minute at which the driver finishes the current
    trip and becomes idle at ``(x, y)``.  ``online_from``/``online_until``
    bound the driver's daily shift in minutes of day (recurring, see
    :func:`online_mask`); the defaults keep the driver online around the
    clock, which reproduces the pre-lifecycle fixed-fleet behaviour exactly.
    """

    driver_id: int
    x: float
    y: float
    available_at: float = 0.0
    served_orders: int = 0
    earned_revenue: float = 0.0
    online_from: float = 0.0
    online_until: float = DAY_MINUTES

    def is_online(self, minute: float) -> bool:
        """True if the driver's shift covers ``minute`` (see :func:`online_mask`)."""
        m = minute % DAY_MINUTES
        if self.online_from <= self.online_until:
            return self.online_from <= m < self.online_until
        return m >= self.online_from or m < self.online_until

    def is_idle(self, minute: float) -> bool:
        """True if the driver is free *and on shift* at ``minute``.

        The availability boundary is pinned closed: a driver whose trip ends
        exactly at the batch minute (``available_at == minute``) is idle, in
        both the scalar and the vectorized engine
        (:meth:`FleetArrays.idle_indices` uses the same ``<=``).
        """
        return self.available_at <= minute and self.is_online(minute)

    def assign(self, order: Order, pickup_minutes: float, trip_minutes: float) -> None:
        """Record serving ``order``: move to the drop-off and accumulate stats."""
        if pickup_minutes < 0 or trip_minutes < 0:
            raise ValueError("travel times must be non-negative")
        start = max(self.available_at, order.arrival_minute)
        self.available_at = start + pickup_minutes + trip_minutes
        self.x = order.dropoff_x
        self.y = order.dropoff_y
        self.served_orders += 1
        self.earned_revenue += order.revenue


@dataclass
class RideRequest:
    """A shared-mobility request for the route-planning case study (DAIF)."""

    request_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 12.0
    max_detour_factor: float = 1.6

    def __post_init__(self) -> None:
        if self.max_detour_factor < 1.0:
            raise ValueError("max_detour_factor must be >= 1")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Vehicle:
    """A shared vehicle with a route of pending stops (DAIF)."""

    vehicle_id: int
    x: float
    y: float
    capacity: int = 3
    onboard: int = 0
    route: list = field(default_factory=list)
    available_at: float = 0.0
    served_requests: int = 0
    travelled_km: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("vehicle capacity must be positive")

    def has_capacity(self) -> bool:
        """True if the vehicle can pick up one more rider."""
        return self.onboard < self.capacity


@dataclass
class OrderArrays:
    """Struct-of-arrays view of an order stream (the vectorized engine's input).

    Each attribute is a 1-D :class:`numpy.ndarray` holding one :class:`Order`
    field for every order; row ``i`` of every array describes the same order.
    The arrays are kept sorted by ``arrival_minute`` (stable), matching the
    global ordering :func:`~repro.dispatch.demand.orders_from_events` produces.
    """

    order_id: np.ndarray
    slot: np.ndarray
    arrival_minute: np.ndarray
    x: np.ndarray
    y: np.ndarray
    dropoff_x: np.ndarray
    dropoff_y: np.ndarray
    revenue: np.ndarray
    max_wait_minutes: np.ndarray

    def __post_init__(self) -> None:
        self.order_id = np.asarray(self.order_id, dtype=np.int64)
        self.slot = np.asarray(self.slot, dtype=np.int64)
        for name in (
            "arrival_minute",
            "x",
            "y",
            "dropoff_x",
            "dropoff_y",
            "revenue",
            "max_wait_minutes",
        ):
            setattr(self, name, np.asarray(getattr(self, name), dtype=float))
        sizes = {getattr(self, name).shape for name in self.field_names()}
        if len(sizes) != 1 or next(iter(sizes)) != (len(self),):
            raise ValueError("all order arrays must be 1-D and equally sized")
        if np.any(self.revenue < 0):
            raise ValueError("order revenue must be non-negative")
        if np.any(self.max_wait_minutes <= 0):
            raise ValueError("max_wait_minutes must be positive")

    @staticmethod
    def field_names() -> tuple:
        return (
            "order_id",
            "slot",
            "arrival_minute",
            "x",
            "y",
            "dropoff_x",
            "dropoff_y",
            "revenue",
            "max_wait_minutes",
        )

    def __len__(self) -> int:
        return int(self.order_id.shape[0])

    @classmethod
    def from_orders(cls, orders: Iterable[Order]) -> "OrderArrays":
        """Pack a sequence of :class:`Order` objects into column arrays."""
        orders = list(orders)
        return cls(
            order_id=np.array([o.order_id for o in orders], dtype=np.int64),
            slot=np.array([o.slot for o in orders], dtype=np.int64),
            arrival_minute=np.array([o.arrival_minute for o in orders], dtype=float),
            x=np.array([o.x for o in orders], dtype=float),
            y=np.array([o.y for o in orders], dtype=float),
            dropoff_x=np.array([o.dropoff_x for o in orders], dtype=float),
            dropoff_y=np.array([o.dropoff_y for o in orders], dtype=float),
            revenue=np.array([o.revenue for o in orders], dtype=float),
            max_wait_minutes=np.array([o.max_wait_minutes for o in orders], dtype=float),
        )

    def to_orders(self) -> List[Order]:
        """Materialise :class:`Order` objects (the scalar engine's input)."""
        return [
            Order(
                order_id=int(self.order_id[i]),
                slot=int(self.slot[i]),
                arrival_minute=float(self.arrival_minute[i]),
                x=float(self.x[i]),
                y=float(self.y[i]),
                dropoff_x=float(self.dropoff_x[i]),
                dropoff_y=float(self.dropoff_y[i]),
                revenue=float(self.revenue[i]),
                max_wait_minutes=float(self.max_wait_minutes[i]),
            )
            for i in range(len(self))
        ]


@dataclass
class FleetArrays:
    """Struct-of-arrays driver state mutated in place by the vectorized engine.

    ``online_from``/``online_until`` hold each driver's recurring daily shift
    window (see :func:`online_mask`); when omitted they default to the
    always-online window, so fleets built without lifecycle information
    behave exactly like the pre-lifecycle fixed fleet.
    """

    driver_id: np.ndarray
    x: np.ndarray
    y: np.ndarray
    available_at: np.ndarray
    served_orders: np.ndarray
    earned_revenue: np.ndarray
    online_from: Optional[np.ndarray] = None
    online_until: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.driver_id = np.asarray(self.driver_id, dtype=np.int64)
        self.served_orders = np.asarray(self.served_orders, dtype=np.int64)
        for name in ("x", "y", "available_at", "earned_revenue"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=float))
        count = len(self)
        if self.online_from is None:
            self.online_from = np.zeros(count)
        if self.online_until is None:
            self.online_until = np.full(count, DAY_MINUTES)
        self.online_from = np.asarray(self.online_from, dtype=float)
        self.online_until = np.asarray(self.online_until, dtype=float)

    def __len__(self) -> int:
        return int(self.driver_id.shape[0])

    @classmethod
    def from_drivers(cls, drivers: Sequence[Driver]) -> "FleetArrays":
        """Pack :class:`Driver` objects into column arrays."""
        return cls(
            driver_id=np.array([d.driver_id for d in drivers], dtype=np.int64),
            x=np.array([d.x for d in drivers], dtype=float),
            y=np.array([d.y for d in drivers], dtype=float),
            available_at=np.array([d.available_at for d in drivers], dtype=float),
            served_orders=np.array([d.served_orders for d in drivers], dtype=np.int64),
            earned_revenue=np.array([d.earned_revenue for d in drivers], dtype=float),
            online_from=np.array([d.online_from for d in drivers], dtype=float),
            online_until=np.array([d.online_until for d in drivers], dtype=float),
        )

    def write_back(self, drivers: Sequence[Driver]) -> None:
        """Copy the array state back onto the original :class:`Driver` objects."""
        if len(drivers) != len(self):
            raise ValueError("driver count mismatch")
        for i, driver in enumerate(drivers):
            driver.x = float(self.x[i])
            driver.y = float(self.y[i])
            driver.available_at = float(self.available_at[i])
            driver.served_orders = int(self.served_orders[i])
            driver.earned_revenue = float(self.earned_revenue[i])
            driver.online_from = float(self.online_from[i])
            driver.online_until = float(self.online_until[i])

    @property
    def has_shifts(self) -> bool:
        """True if any driver's shift window differs from always-online."""
        return bool(
            np.any(self.online_from != 0.0) or np.any(self.online_until != DAY_MINUTES)
        )

    def online_indices(self, minute: float) -> np.ndarray:
        """Indices of drivers on shift at ``minute`` (in fleet order)."""
        return np.nonzero(online_mask(self.online_from, self.online_until, minute))[0]

    def idle_indices(self, minute: float) -> np.ndarray:
        """Indices of drivers free *and on shift* at ``minute`` (in fleet order).

        Uses ``available_at <= minute`` (closed boundary) combined with the
        recurring shift mask — the same semantics as :meth:`Driver.is_idle`,
        so the scalar and vectorized engines select identical idle sets.
        """
        idle = self.available_at <= minute
        if self.has_shifts:
            idle &= online_mask(self.online_from, self.online_until, minute)
        return np.nonzero(idle)[0]


@dataclass(frozen=True)
class DispatchMetrics:
    """Aggregate outcome of one dispatch simulation.

    ``cancelled_orders`` counts rider cancellations: orders dropped from the
    pending pool because their wait exceeded the rider's patience
    (``max_wait_minutes``) at a batch boundary.  Cancelled orders are a
    subset of the unserved ones (``total_orders - served_orders``); orders
    still pending when their slot closes are unserved but not cancelled.
    """

    served_orders: int
    total_orders: int
    total_revenue: float
    total_travel_km: float
    unified_cost: float
    cancelled_orders: int = 0

    @property
    def service_rate(self) -> float:
        """Fraction of orders served."""
        if self.total_orders == 0:
            return 0.0
        return self.served_orders / self.total_orders

    @property
    def cancellation_rate(self) -> float:
        """Fraction of orders cancelled by rider patience expiry."""
        if self.total_orders == 0:
            return 0.0
        return self.cancelled_orders / self.total_orders
