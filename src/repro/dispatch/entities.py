"""Entities of the dispatch case study: orders, drivers and ride requests.

The paper's case study plugs the tuned predictions into two spatial
crowdsourcing problems — task assignment (POLAR, LS) and route planning
(DAIF).  These dataclasses are the shared vocabulary of the simulators in this
package.  Coordinates are normalised to the unit square, consistent with the
data substrate; travel distances are converted to kilometres via the city
extent held by :class:`~repro.dispatch.travel.TravelModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Order:
    """A taxi order (task) to be assigned to a driver.

    Attributes
    ----------
    order_id:
        Unique identifier.
    slot:
        Time slot in which the order appears.
    arrival_minute:
        Arrival time in minutes from the start of the simulation horizon.
    x, y:
        Pick-up location (normalised).
    dropoff_x, dropoff_y:
        Drop-off location (normalised).
    revenue:
        Fare obtained for serving the order.
    max_wait_minutes:
        The order is cancelled if no driver reaches it within this time.
    """

    order_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.revenue < 0:
            raise ValueError("order revenue must be non-negative")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Driver:
    """A driver (worker) that serves orders.

    ``available_at`` is the minute at which the driver finishes the current
    trip and becomes idle at ``(x, y)``.
    """

    driver_id: int
    x: float
    y: float
    available_at: float = 0.0
    served_orders: int = 0
    earned_revenue: float = 0.0

    def is_idle(self, minute: float) -> bool:
        """True if the driver is free at ``minute``."""
        return self.available_at <= minute

    def assign(self, order: Order, pickup_minutes: float, trip_minutes: float) -> None:
        """Record serving ``order``: move to the drop-off and accumulate stats."""
        if pickup_minutes < 0 or trip_minutes < 0:
            raise ValueError("travel times must be non-negative")
        start = max(self.available_at, order.arrival_minute)
        self.available_at = start + pickup_minutes + trip_minutes
        self.x = order.dropoff_x
        self.y = order.dropoff_y
        self.served_orders += 1
        self.earned_revenue += order.revenue


@dataclass
class RideRequest:
    """A shared-mobility request for the route-planning case study (DAIF)."""

    request_id: int
    slot: int
    arrival_minute: float
    x: float
    y: float
    dropoff_x: float
    dropoff_y: float
    revenue: float
    max_wait_minutes: float = 12.0
    max_detour_factor: float = 1.6

    def __post_init__(self) -> None:
        if self.max_detour_factor < 1.0:
            raise ValueError("max_detour_factor must be >= 1")
        if self.max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")


@dataclass
class Vehicle:
    """A shared vehicle with a route of pending stops (DAIF)."""

    vehicle_id: int
    x: float
    y: float
    capacity: int = 3
    onboard: int = 0
    route: list = field(default_factory=list)
    available_at: float = 0.0
    served_requests: int = 0
    travelled_km: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("vehicle capacity must be positive")

    def has_capacity(self) -> bool:
        """True if the vehicle can pick up one more rider."""
        return self.onboard < self.capacity


@dataclass(frozen=True)
class DispatchMetrics:
    """Aggregate outcome of one dispatch simulation."""

    served_orders: int
    total_orders: int
    total_revenue: float
    total_travel_km: float
    unified_cost: float

    @property
    def service_rate(self) -> float:
        """Fraction of orders served."""
        if self.total_orders == 0:
            return 0.0
        return self.served_orders / self.total_orders
