"""LS-style revenue-maximising task assignment.

LS (Cheng et al., the queueing-theoretic vehicle-dispatching framework) aims to
maximise total platform revenue.  Its two distinguishing traits, kept here, are:

* repositioning guided by the *expected revenue rate* of each region — the
  predicted demand weighted by the typical order revenue and discounted by the
  expected queueing competition from other idle drivers in the region;
* an assignment stage that solves a maximum-weight matching whose weights are
  the order revenue minus the (distance-proportional) pickup cost, so a distant
  but lucrative order can win over a nearby cheap one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.dispatch.entities import Driver, FleetArrays, Order
from repro.dispatch.kernels import cell_supply, move_drivers
from repro.dispatch.matching import max_weight_pairs, maximum_weight_matching
from repro.dispatch.travel import TravelModel


class LSDispatcher:
    """Queueing-theoretic revenue-maximising dispatcher."""

    name = "ls"

    #: :meth:`match_pairs` emits pairs by ascending row (Hungarian solver);
    #: the engine's sparse pipeline merges per-component pairs accordingly.
    match_order = "row"

    def __init__(
        self,
        mean_order_revenue: float = 8.0,
        pickup_cost_per_km: float = 0.8,
        reposition_fraction: float = 0.4,
        max_reposition_km: float = 6.0,
    ) -> None:
        if mean_order_revenue <= 0:
            raise ValueError("mean_order_revenue must be positive")
        if pickup_cost_per_km < 0:
            raise ValueError("pickup_cost_per_km must be non-negative")
        if not 0.0 <= reposition_fraction <= 1.0:
            raise ValueError("reposition_fraction must be in [0, 1]")
        if max_reposition_km <= 0:
            raise ValueError("max_reposition_km must be positive")
        self.mean_order_revenue = mean_order_revenue
        self.pickup_cost_per_km = pickup_cost_per_km
        self.reposition_fraction = reposition_fraction
        self.max_reposition_km = max_reposition_km

    # ------------------------------------------------------------------ #
    # Repositioning: expected-revenue-rate guidance
    # ------------------------------------------------------------------ #

    def reposition(
        self,
        drivers: Sequence[Driver],
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Send a fraction of idle drivers to the cells with the best revenue rate."""
        if predicted_hgrid_demand is None:
            return
        demand = np.asarray(predicted_hgrid_demand, dtype=float)
        resolution = demand.shape[0]
        idle = [driver for driver in drivers if driver.is_idle(minute)]
        if not idle:
            return
        supply = np.zeros_like(demand)
        for driver in idle:
            col = min(int(driver.x * resolution), resolution - 1)
            row = min(int(driver.y * resolution), resolution - 1)
            supply[row, col] += 1.0
        # Expected revenue rate per additional driver in a cell: demand times
        # mean revenue shared among the drivers already queued there (the
        # queueing-theoretic competition term).
        revenue_rate = demand * self.mean_order_revenue / (supply + 1.0)
        total = revenue_rate.sum()
        if total <= 0:
            return
        move_count = int(round(len(idle) * self.reposition_fraction))
        if move_count == 0:
            return
        # Move the drivers currently standing in the lowest-revenue cells.
        def cell_rate(driver: Driver) -> float:
            col = min(int(driver.x * resolution), resolution - 1)
            row = min(int(driver.y * resolution), resolution - 1)
            return float(revenue_rate[row, col])

        movable = sorted(idle, key=cell_rate)[:move_count]
        probabilities = (revenue_rate / total).ravel()
        chosen_cells = rng.choice(probabilities.size, size=len(movable), p=probabilities)
        for driver, cell in zip(movable, chosen_cells):
            row, col = divmod(int(cell), resolution)
            target_x = (col + rng.random()) / resolution
            target_y = (row + rng.random()) / resolution
            distance = travel.distance_km(driver.x, driver.y, target_x, target_y)
            if distance > self.max_reposition_km:
                continue
            driver.x = float(np.clip(target_x, 0.0, np.nextafter(1.0, 0.0)))
            driver.y = float(np.clip(target_y, 0.0, np.nextafter(1.0, 0.0)))
            driver.available_at = minute + travel.minutes(distance)

    # ------------------------------------------------------------------ #
    # Assignment: maximum-weight (net revenue) matching
    # ------------------------------------------------------------------ #

    def assign(
        self,
        orders: Sequence[Order],
        drivers: Sequence[Driver],
        travel: TravelModel,
        minute: float,
    ) -> Dict[int, int]:
        """Maximum net-revenue matching subject to the waiting-time limit."""
        if not orders or not drivers:
            return {}
        order_x = np.array([order.x for order in orders])
        order_y = np.array([order.y for order in orders])
        revenue = np.array([order.revenue for order in orders])
        driver_x = np.array([driver.x for driver in drivers])
        driver_y = np.array([driver.y for driver in drivers])
        distance = travel.distance_km(
            driver_x[None, :], driver_y[None, :], order_x[:, None], order_y[:, None]
        )
        pickup_minutes = travel.minutes(distance)
        waits = np.array(
            [minute - order.arrival_minute for order in orders], dtype=float
        )
        limits = np.array([order.max_wait_minutes for order in orders], dtype=float)
        feasible = pickup_minutes + waits[:, None] <= limits[:, None]
        weight = revenue[:, None] - self.pickup_cost_per_km * distance
        weight = np.where(feasible, weight, -np.inf)
        return maximum_weight_matching(weight, min_weight=0.0)

    # ------------------------------------------------------------------ #
    # Array kernels (vectorized engine)
    # ------------------------------------------------------------------ #

    def reposition_arrays(
        self,
        fleet: FleetArrays,
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Vectorized :meth:`reposition` over struct-of-arrays fleet state.

        RNG draw order matches the scalar method exactly: one ``rng.choice``
        for the target cells, then one ``rng.random((k, 2))`` of per-mover
        (x, y) jitters.
        """
        if predicted_hgrid_demand is None:
            return
        demand = np.asarray(predicted_hgrid_demand, dtype=float)
        resolution = demand.shape[0]
        idle = fleet.idle_indices(minute)
        if idle.size == 0:
            return
        rows, cols, supply = cell_supply(fleet, idle, demand)
        revenue_rate = demand * self.mean_order_revenue / (supply + 1.0)
        total = revenue_rate.sum()
        if total <= 0:
            return
        move_count = int(round(idle.size * self.reposition_fraction))
        if move_count == 0:
            return
        # Stable sort mirrors the scalar ``sorted(idle, key=cell_rate)``.
        order = np.argsort(revenue_rate[rows, cols], kind="stable")
        movable = idle[order[:move_count]]
        probabilities = (revenue_rate / total).ravel()
        chosen_cells = rng.choice(probabilities.size, size=movable.size, p=probabilities)
        jitter = rng.random((movable.size, 2))
        move_drivers(
            fleet,
            movable,
            chosen_cells,
            jitter,
            resolution,
            travel,
            minute,
            self.max_reposition_km,
        )

    def match_pairs(
        self,
        distance: np.ndarray,
        feasible: np.ndarray,
        revenue: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`assign` objective on a candidate matrix.

        Maximum net-revenue matching (revenue minus distance-proportional
        pickup cost) over the feasible pairs, in the scalar assignment dict's
        iteration order.
        """
        weight = revenue[:, None] - self.pickup_cost_per_km * distance
        return max_weight_pairs(weight, feasible, min_weight=0.0)

    def match_single_order(self, distance: np.ndarray, revenue: float) -> int:
        """Star-component fast path: best driver for one order, or ``-1``.

        On a fully-feasible ``1 x k`` block the maximum-weight matching is
        the maximum-net-revenue driver (ties to the smallest index, exactly
        :func:`scipy.optimize.linear_sum_assignment`'s tie-break), subject to
        the ``min_weight=0`` profitability floor.
        """
        weight = revenue - self.pickup_cost_per_km * distance
        best = int(np.argmax(weight))
        if weight[best] < 0.0:
            return -1
        return best

    def match_single_driver(self, distance: np.ndarray, revenue: np.ndarray) -> int:
        """Star-component fast path: best order for one driver, or ``-1``."""
        weight = revenue - self.pickup_cost_per_km * distance
        best = int(np.argmax(weight))
        if weight[best] < 0.0:
            return -1
        return best
