"""Array kernels shared by the POLAR and LS repositioning stages.

Both policies bin idle drivers into the predicted-demand lattice and apply
the same jittered cell-move rule to the drivers they decide to relocate;
these helpers keep that logic in one place.  Every operation mirrors the
scalar per-driver loops elementwise (see the draw-order notes in
:mod:`repro.dispatch.engine`), so the policies stay bit-identical to the
scalar oracle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dispatch.entities import FleetArrays
from repro.dispatch.travel import TravelModel


def cell_supply(
    fleet: FleetArrays, idle: np.ndarray, demand: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin the idle drivers into ``demand``'s lattice and count them per cell.

    Returns ``(rows, cols, supply)``: each idle driver's cell coordinates (in
    idle order) and the per-cell head count.  The bincount of the flattened
    cells equals the scalar loop's per-driver ``+= 1`` counts exactly.
    """
    resolution = demand.shape[0]
    cols = np.minimum((fleet.x[idle] * resolution).astype(int), resolution - 1)
    rows = np.minimum((fleet.y[idle] * resolution).astype(int), resolution - 1)
    supply = (
        np.bincount(rows * resolution + cols, minlength=resolution * resolution)
        .astype(float)
        .reshape(demand.shape)
    )
    return rows, cols, supply


def move_drivers(
    fleet: FleetArrays,
    movers: np.ndarray,
    chosen_cells: np.ndarray,
    jitter: np.ndarray,
    resolution: int,
    travel: TravelModel,
    minute: float,
    max_reposition_km: float,
) -> None:
    """Apply a repositioning draw to the fleet arrays in place.

    Mirrors the scalar per-driver loop: targets are jittered inside the
    chosen cells (``jitter`` row ``i`` holds mover ``i``'s (x, y) draws),
    moves longer than ``max_reposition_km`` are discarded, and movers become
    busy until they arrive.
    """
    rows, cols = np.divmod(chosen_cells.astype(int), resolution)
    target_x = (cols + jitter[:, 0]) / resolution
    target_y = (rows + jitter[:, 1]) / resolution
    distance = travel.distance_km(fleet.x[movers], fleet.y[movers], target_x, target_y)
    ok = distance <= max_reposition_km
    moved = movers[ok]
    if moved.size == 0:
        return
    upper = np.nextafter(1.0, 0.0)
    fleet.x[moved] = np.clip(target_x[ok], 0.0, upper)
    fleet.y[moved] = np.clip(target_y[ok], 0.0, upper)
    fleet.available_at[moved] = minute + travel.minutes(distance[ok])
