"""Vectorized task-assignment engine over struct-of-arrays state.

This module is the batched counterpart of the per-object loop in
:mod:`repro.dispatch.simulator`.  Orders live in an
:class:`~repro.dispatch.entities.OrderArrays` (one column per field), drivers
in a :class:`~repro.dispatch.entities.FleetArrays`, and every per-minute step
— idle filtering, order-batch collection, candidate distances, feasibility
masks — is an O(1) sequence of array passes instead of per-entity Python
calls.  Only the final walk over the (small) set of matched pairs stays a
Python loop, so metric accumulation happens in exactly the float-addition
order of the scalar engine.

Bit-identical replay
--------------------
The engine is a drop-in replacement for the scalar simulator: given the same
seed it produces the *identical* :class:`~repro.dispatch.entities.DispatchMetrics`
(not merely statistically equivalent).  Three properties make that hold:

1. **Deterministic RNG draw order.**  All randomness is consumed through the
   policies' ``reposition_arrays`` kernels, which draw in a documented, fixed
   order per slot: one ``rng.choice`` over the deficit/revenue cells, then one
   ``rng.random((movers, 2))`` whose rows are each mover's (x, y) jitter.
   NumPy fills array draws from the bit generator in C order, so this equals
   the scalar engine's interleaved per-driver scalar draws.  No draw ever
   depends on iteration order over a dict or set.
2. **Elementwise-identical kernels.**  The batched distance/feasibility maths
   applies the same IEEE-754 operations per element as the scalar calls, and
   the matching kernels in :mod:`repro.dispatch.matching` are shared verbatim
   by both engines.
3. **Accumulation order.**  Served/revenue/travel sums are grouped per batch,
   per slot, then per run — the same float-addition grouping as the scalar
   loops.

These invariants are asserted by ``tests/dispatch/test_engine_equivalence.py``
which replays both engines across seeds, policies and fleet sizes.

Sparse spatial matching
-----------------------
Both engines historically built a dense ``(pending orders x idle drivers)``
cost matrix per batch and handed it whole to the matching kernel — O(N*M)
distance work dominated by pairs that can never be feasible (an order only
reaches drivers within ``remaining_wait / 60 * speed_kmh`` km).  The sparse
pipeline (``sparse="auto"|"always"|"never"``) replaces that with:

1. **index** — bin the idle drivers into a
   :class:`~repro.dispatch.spatial.GridBucketIndex` (the paper's grid cell
   geometry reused as a spatial index);
2. **prune** — per order, gather only the drivers inside the feasibility
   radius box and apply the dense path's bit-identical feasibility
   arithmetic to them;
3. **decompose** — split the pruned feasibility graph into connected
   components (:func:`~repro.dispatch.matching.edge_components`, canonical
   ordering documented there);
4. **solve** — run the policy's ``match_pairs`` kernel on each small block
   and merge the pairs back into the dense kernel's emission order
   (``policy.match_order``: ``"row"`` for the assignment solvers, ``"cost"``
   for the greedy scan).

The per-batch cost drops from O(N*M) to output-sensitive near-linear work.
``"auto"`` switches the sparse path on once ``pending * idle`` crosses
:data:`SPARSE_AUTO_THRESHOLD`; the dense path stays the oracle and the
equivalence suite asserts sparse and dense produce identical metrics.

Fleet & order lifecycle
-----------------------
Per-driver shift windows (``FleetArrays.online_from``/``online_until``,
recurring minutes of day) are masked out of the idle set — and therefore out
of the sparse index, which is built over the idle subset — in both engines;
rider cancellations (pending orders whose wait exceeds their patience) are
counted once per drop in ``DispatchMetrics.cancelled_orders``; and
:meth:`VectorizedAssignmentEngine.run` accepts one :class:`OrderArrays` per
test day for multi-day replay, carrying fleet state across the
``DAY_MINUTES`` day boundary.  The scalar simulator implements the identical
semantics, so the bit-identity contract extends to lifecycle scenarios (see
``tests/dispatch/test_lifecycle.py``).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.dispatch.demand import PredictedDemandProvider
from repro.dispatch.entities import (
    DAY_MINUTES,
    DispatchMetrics,
    FleetArrays,
    OrderArrays,
    online_mask,
)
from repro.dispatch.matching import edge_components
from repro.dispatch.spatial import GridBucketIndex
from repro.dispatch.travel import TravelModel


def infer_minutes_per_slot(arrival_minute: np.ndarray, slot: np.ndarray) -> float:
    """Best-effort slot length (minutes) from an order stream.

    Every order satisfies ``slot * mps <= arrival < (slot + 1) * mps``, so
    each order yields the lower bound ``arrival / (slot + 1)`` on the slot
    length; the tightest bound across the stream, floored at the paper's
    30-minute default, is returned.  Unlike the historical
    ``latest_arrival / (max_slot + 1)`` heuristic this cannot be skewed by an
    early arrival in the last slot, but it is still inference — callers that
    know the dataset's :class:`~repro.data.events.TimeSlotConfig` should pass
    ``minutes_per_slot`` explicitly (scenario bundles do), which is exact for
    every slot window, offset or not.
    """
    arrival = np.asarray(arrival_minute, dtype=float)
    slots = np.asarray(slot, dtype=float)
    if arrival.size == 0:
        return 30.0
    return max(30.0, float(np.max(arrival / (slots + 1.0))))

#: ``sparse="auto"`` switches to the sparse pipeline once the dense candidate
#: matrix of a batch would hold at least this many cells.  Below it the dense
#: array passes are already cache-resident and the pruning bookkeeping would
#: cost more than it saves.
SPARSE_AUTO_THRESHOLD = 16384

#: Accepted values of the ``sparse`` engine mode.
SPARSE_MODES = ("auto", "always", "never")


class ArrayPolicy(Protocol):
    """Array-kernel strategy interface implemented by POLAR and LS."""

    name: str

    def reposition_arrays(
        self,
        fleet: FleetArrays,
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Move idle drivers based on the predicted demand (in place)."""
        ...

    def match_pairs(
        self,
        distance: np.ndarray,
        feasible: np.ndarray,
        revenue: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Match an ``(orders, drivers)`` candidate matrix.

        ``distance`` holds pickup distances, ``feasible`` the wait-constraint
        mask and ``revenue`` the per-order revenues (used by revenue-weighted
        objectives).  Returns the matched ``(rows, cols)`` local index pairs
        in the scalar assignment's iteration order.
        """
        ...


def supports_array_kernels(policy: object) -> bool:
    """True if ``policy`` implements the vectorized kernel interface."""
    return hasattr(policy, "reposition_arrays") and hasattr(policy, "match_pairs")


def supports_sparse_matching(policy: object) -> bool:
    """True if ``policy`` can run the component-decomposed sparse pipeline.

    Beyond the array kernels, the policy must declare its ``match_order``
    (``"row"`` or ``"cost"``) so the engine can merge per-component pairs
    back into the dense kernel's emission order.
    """
    return supports_array_kernels(policy) and getattr(policy, "match_order", None) in (
        "row",
        "cost",
    )


class VectorizedAssignmentEngine:
    """Runs one dispatch policy over array state, slot by slot.

    Parameters mirror :class:`~repro.dispatch.simulator.TaskAssignmentSimulator`;
    the simulator instantiates this engine when ``engine="vector"``.

    ``sparse`` selects the matching pipeline: ``"never"`` always builds the
    dense candidate matrix (the PR 2 behaviour and the oracle), ``"always"``
    always prunes through the grid index, ``"auto"`` (default) switches per
    batch on :data:`SPARSE_AUTO_THRESHOLD`.  Policies that do not declare a
    ``match_order`` fall back to the dense path regardless of the mode.
    """

    def __init__(
        self,
        policy: ArrayPolicy,
        travel: TravelModel,
        demand: Optional[PredictedDemandProvider] = None,
        batch_minutes: float = 2.0,
        unserved_penalty_km: float = 5.0,
        sparse: str = "auto",
        sparse_threshold: int = SPARSE_AUTO_THRESHOLD,
        sparse_resolution: Optional[int] = None,
        minutes_per_slot: Optional[float] = None,
    ) -> None:
        if sparse not in SPARSE_MODES:
            raise ValueError(f"sparse must be one of {SPARSE_MODES}")
        if sparse_threshold < 0:
            raise ValueError("sparse_threshold must be non-negative")
        if sparse_resolution is not None and not 1 <= sparse_resolution <= 255:
            # Fail at construction, not minutes into a run when the first
            # sparse batch builds a GridBucketIndex.
            raise ValueError("sparse_resolution must be in [1, 255]")
        if minutes_per_slot is not None and minutes_per_slot <= 0:
            raise ValueError("minutes_per_slot must be positive")
        self.policy = policy
        self.travel = travel
        self.demand = demand
        self.batch_minutes = batch_minutes
        self.unserved_penalty_km = unserved_penalty_km
        self.sparse = sparse
        self.sparse_threshold = int(sparse_threshold)
        self.sparse_resolution = sparse_resolution
        self.minutes_per_slot = minutes_per_slot
        self._sparse_capable = supports_sparse_matching(policy)

    # ------------------------------------------------------------------ #

    def run(
        self,
        orders: Union[OrderArrays, Sequence[OrderArrays]],
        fleet: FleetArrays,
        rng: np.random.Generator,
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
        days: Optional[int] = None,
    ) -> DispatchMetrics:
        """Simulate the assignment of ``orders`` to the ``fleet`` in place.

        ``orders`` is one :class:`OrderArrays` (single-day replay, the
        default) or a sequence of per-day streams (multi-day replay);
        ``days`` optionally asserts the expected replay length.  Day ``d`` of
        a multi-day replay runs ``d * DAY_MINUTES`` later on the absolute
        clock and asks the demand provider for day ``day + d``; fleet state
        — positions, ``available_at``, per-driver stats — carries across the
        day boundary, so an overnight trip keeps its driver busy into the
        next morning and shift windows (which recur daily) re-open.
        """
        if isinstance(orders, OrderArrays):
            orders_per_day: List[OrderArrays] = [orders]
        else:
            orders_per_day = list(orders)
        if days is not None and days != len(orders_per_day):
            raise ValueError(
                f"days={days} but {len(orders_per_day)} per-day order stream(s) given"
            )
        if sum(len(day_orders) for day_orders in orders_per_day) == 0:
            return DispatchMetrics(0, 0, 0.0, 0.0, 0.0, 0)
        if len(fleet) == 0:
            raise ValueError("at least one driver is required")
        served = 0
        cancelled = 0
        total_orders = 0
        revenue = 0.0
        travel_km = 0.0
        for offset, day_orders in enumerate(orders_per_day):
            # A day with no orders is skipped entirely (no repositioning
            # draws), matching the scalar engine's empty-day early return.
            if len(day_orders) == 0:
                continue
            day_result = self._run_day(
                day_orders, fleet, rng, day + offset, offset * DAY_MINUTES, slots
            )
            served += day_result[0]
            cancelled += day_result[1]
            revenue += day_result[2]
            travel_km += day_result[3]
            total_orders += day_result[4]
        unified_cost = travel_km + self.unserved_penalty_km * (total_orders - served)
        return DispatchMetrics(
            served_orders=served,
            total_orders=total_orders,
            total_revenue=float(revenue),
            total_travel_km=float(travel_km),
            unified_cost=float(unified_cost),
            cancelled_orders=cancelled,
        )

    # ------------------------------------------------------------------ #

    def _run_day(
        self,
        orders: OrderArrays,
        fleet: FleetArrays,
        rng: np.random.Generator,
        day: int,
        day_offset: float,
        slots: Optional[Sequence[int]],
    ) -> Tuple[int, int, float, float, int]:
        """One day of the replay; returns (served, cancelled, revenue, km, total)."""
        if slots is None:
            day_slots = [int(s) for s in np.unique(orders.slot)]
        else:
            day_slots = [int(s) for s in slots]
        minutes_per_slot = self._resolve_minutes_per_slot(orders)
        # Trip legs depend only on the order, so they are precomputed for the
        # whole stream in two array passes.
        trip_km = self.travel.distance_km(
            orders.x, orders.y, orders.dropoff_x, orders.dropoff_y
        )
        trip_minutes = self.travel.minutes(trip_km)
        served = 0
        cancelled = 0
        revenue = 0.0
        travel_km = 0.0
        # When the slot column is non-decreasing (the OrderArrays invariant),
        # each slot is a contiguous index range found by bisection instead of
        # a full-array scan per slot.
        slot_column_sorted = bool(np.all(orders.slot[:-1] <= orders.slot[1:]))
        # Per-slot order counts collected while walking the slots; summing
        # the (deduplicated) counts replaces the former O(N*S) ``np.isin``
        # pass over the whole order stream.
        slot_counts: Dict[int, int] = {}
        for slot in day_slots:
            slot_start = day_offset + slot * minutes_per_slot
            predicted = self._predicted_demand(day, slot)
            self.policy.reposition_arrays(
                fleet, predicted, self.travel, slot_start, rng
            )
            if slot_column_sorted:
                lo = int(orders.slot.searchsorted(slot, side="left"))
                hi = int(orders.slot.searchsorted(slot, side="right"))
                in_slot = np.arange(lo, hi, dtype=np.intp)
            else:
                in_slot = np.nonzero(orders.slot == slot)[0]
            slot_counts[int(slot)] = int(in_slot.size)
            if in_slot.size:
                # Stable sort matches the scalar engine's per-slot
                # ``sorted(..., key=arrival_minute)``.
                in_slot = in_slot[
                    np.argsort(orders.arrival_minute[in_slot], kind="stable")
                ]
            slot_served, slot_cancelled, slot_revenue, slot_km = self._run_slot(
                orders,
                in_slot,
                fleet,
                slot_start,
                minutes_per_slot,
                trip_km,
                trip_minutes,
                day_offset,
            )
            served += slot_served
            cancelled += slot_cancelled
            revenue += slot_revenue
            travel_km += slot_km
        return served, cancelled, revenue, travel_km, sum(slot_counts.values())

    # ------------------------------------------------------------------ #

    def _resolve_minutes_per_slot(self, orders: OrderArrays) -> float:
        if self.minutes_per_slot is not None:
            return float(self.minutes_per_slot)
        return infer_minutes_per_slot(orders.arrival_minute, orders.slot)

    def _predicted_demand(self, day: int, slot: int) -> Optional[np.ndarray]:
        if self.demand is None:
            return None
        if not self.demand.has_slot(day, slot):
            return None
        return self.demand.hgrid_demand(day, slot)

    def _use_sparse(self, alive: int, idle: int) -> bool:
        if not self._sparse_capable or self.sparse == "never":
            return False
        if self.sparse == "always":
            return True
        return alive * idle >= self.sparse_threshold

    def _run_slot(
        self,
        orders: OrderArrays,
        slot_indices: np.ndarray,
        fleet: FleetArrays,
        slot_start: float,
        minutes_per_slot: float,
        trip_km: np.ndarray,
        trip_minutes: np.ndarray,
        day_offset: float = 0.0,
    ) -> Tuple[int, int, float, float]:
        if slot_indices.size == 0:
            return 0, 0, 0.0, 0.0
        run = _SlotRun(self, fleet, slot_start, minutes_per_slot)
        # Per-slot order columns, sorted by arrival (the slot_indices order).
        # Arrivals are day-relative; the day offset lifts them onto the
        # absolute replay clock (a no-op bitwise for day 0).
        run.extend(
            orders.arrival_minute[slot_indices] + day_offset,
            orders.max_wait_minutes[slot_indices],
            orders.revenue[slot_indices],
            orders.x[slot_indices],
            orders.y[slot_indices],
            orders.dropoff_x[slot_indices],
            orders.dropoff_y[slot_indices],
            trip_km[slot_indices],
            trip_minutes[slot_indices],
        )
        run.drain()
        return run.served, run.cancelled, run.revenue, run.travel_km

    # ------------------------------------------------------------------ #

    def _match_sparse(
        self,
        alive_x: np.ndarray,
        alive_y: np.ndarray,
        alive_waits: np.ndarray,
        alive_limits: np.ndarray,
        alive_revenue: np.ndarray,
        idle_x: np.ndarray,
        idle_y: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index -> prune -> decompose -> solve one batch without the dense matrix.

        Returns ``(rows, cols, pickup_km)`` with rows/cols indexing the alive
        orders / idle drivers of the batch, in the policy's dense emission
        order; the pickup distances are bit-identical to the dense matrix
        entries (same elementwise arithmetic on the same operands).
        """
        travel = self.travel
        speed = travel.speed_kmh
        empty = np.empty(0, dtype=np.intp)
        index = GridBucketIndex(
            idle_x, idle_y, travel, resolution=self.sparse_resolution
        )
        # Max feasible pickup distance from each order's remaining wait
        # tolerance: pickup_minutes + wait <= limit <=> km <= slack / 60 *
        # speed.  The box query is conservative (one-cell safety ring), and
        # the exact dense-path feasibility test below decides membership, so
        # float rounding of the radius cannot change results.
        radii_km = (alive_limits - alive_waits) * speed / 60.0
        flat_rows, flat_cols = index.candidates_in_boxes(alive_x, alive_y, radii_km)
        if flat_rows.size == 0:
            return empty, empty.copy(), np.empty(0, dtype=float)
        # One flattened pass over every (order, candidate) pair: the
        # elementwise distance (bit-identical to the dense path's
        # pairwise_km entries — the sign-flipped delta vanishes under
        # abs/square) followed by the dense path's exact feasibility
        # arithmetic, (d / speed) * 60 + wait <= limit.
        distance = travel.distance_km(
            alive_x[flat_rows], alive_y[flat_rows], idle_x[flat_cols], idle_y[flat_cols]
        )
        scratch = distance / speed
        scratch *= 60.0
        scratch += alive_waits[flat_rows]
        keep = scratch <= alive_limits[flat_rows]
        edge_rows = flat_rows[keep]
        edge_cols = flat_cols[keep]
        edge_km = distance[keep]
        if edge_rows.size == 0:
            return empty, empty.copy(), np.empty(0, dtype=float)
        components = edge_components(
            edge_rows, edge_cols, int(alive_x.size), int(idle_x.size)
        )
        # edge_rows is non-decreasing (candidates were gathered per ascending
        # order), so each order's edges are one slice.
        row_starts = edge_rows.searchsorted(
            np.arange(int(alive_x.size) + 1, dtype=np.intp)
        )
        single_order = getattr(self.policy, "match_single_order", None)
        single_driver = getattr(self.policy, "match_single_driver", None)
        out_rows: List[np.ndarray] = []
        out_cols: List[np.ndarray] = []
        out_km: List[np.ndarray] = []
        for rows, cols in components:
            if rows.size == 1 and single_order is not None:
                # Star component (one order): its columns are exactly its
                # feasible edges, so the block solve collapses to the
                # policy's single-row rule.  The edge slice is in cell-major
                # candidate order; the canonical block has ascending columns,
                # so sort this (small) slice to keep the first-occurrence
                # tie-break identical to the dense kernels'.
                row = int(rows[0])
                lo, hi = int(row_starts[row]), int(row_starts[row + 1])
                row_cols = edge_cols[lo:hi]
                row_km = edge_km[lo:hi]
                col_order = np.argsort(row_cols, kind="stable")
                row_cols = row_cols[col_order]
                row_km = row_km[col_order]
                local = single_order(row_km, float(alive_revenue[row]))
                if local < 0:
                    continue
                out_rows.append(rows)
                out_cols.append(row_cols[local : local + 1])
                out_km.append(row_km[local : local + 1])
                continue
            if cols.size == 1 and single_driver is not None:
                # Star component (one driver): every row is feasible for it.
                col_km = np.asarray(
                    travel.distance_km(
                        alive_x[rows], alive_y[rows], idle_x[cols[0]], idle_y[cols[0]]
                    )
                )
                local = single_driver(col_km, alive_revenue[rows])
                if local < 0:
                    continue
                out_rows.append(rows[local : local + 1])
                out_cols.append(cols)
                out_km.append(col_km[local : local + 1])
                continue
            if cols.size > 4 * rows.size:
                # Column reduction: with k rows in a block, a matching only
                # ever uses each row's k cheapest feasible columns (exchange
                # argument: a row matched outside its k cheapest always has an
                # unassigned cheaper column to swap to; the greedy scan can
                # likewise never be pushed past k-1 taken columns).  The
                # threshold is tie-inclusive — every column tied with the k-th
                # cheapest is kept — so the reduced block sees the identical
                # candidate prefix as the full block in all tie-break orders.
                # "Cheapest" is smallest pickup distance for both objectives
                # (LS's net-revenue weight is revenue minus a non-negative
                # multiple of distance, monotone per row), and the per-row
                # distances are already in the edge arrays.  This caps a
                # hotspot mega-block at ~k x k^2 instead of k x fleet.
                k = rows.size
                kept: List[np.ndarray] = []
                for row in rows.tolist():
                    lo, hi = int(row_starts[row]), int(row_starts[row + 1])
                    row_km = edge_km[lo:hi]
                    if row_km.size > k:
                        kth = np.partition(row_km, k - 1)[k - 1]
                        kept.append(edge_cols[lo:hi][row_km <= kth])
                    else:
                        kept.append(edge_cols[lo:hi])
                cols = np.unique(np.concatenate(kept))
            sub_distance = travel.pairwise_km(
                alive_x[rows], alive_y[rows], idle_x[cols], idle_y[cols]
            )
            scratch = sub_distance / speed
            scratch *= 60.0
            scratch += alive_waits[rows][:, None]
            sub_feasible = scratch <= alive_limits[rows][:, None]
            local_rows, local_cols = self.policy.match_pairs(
                sub_distance, sub_feasible, alive_revenue[rows]
            )
            if local_rows.size == 0:
                continue
            out_rows.append(rows[local_rows])
            out_cols.append(cols[local_cols])
            out_km.append(sub_distance[local_rows, local_cols])
        if not out_rows:
            return empty, empty.copy(), np.empty(0, dtype=float)
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        pair_km = np.concatenate(out_km)
        # Merge into the dense kernel's emission order (see
        # merge_pairs_by_row / merge_pairs_by_cost in matching.py): ascending
        # row for the assignment solvers, ascending (cost, row-major flat
        # position) for the greedy scan.
        if self.policy.match_order == "cost":
            order = np.lexsort((rows * int(idle_x.size) + cols, pair_km))
        else:
            order = np.argsort(rows, kind="stable")
        return rows[order], cols[order], pair_km[order]


class _SlotRun:
    """One slot's micro-batch state: the engine's batch-loop body, reified.

    Both execution modes of the engine drive this object, so they cannot
    drift apart:

    * the offline replay (:meth:`VectorizedAssignmentEngine._run_slot`)
      constructs it with the slot's fully gathered order columns and runs
      :meth:`drain`;
    * the incremental :class:`DispatchSession` constructs it empty and
      interleaves :meth:`extend` (admissions) with :meth:`step` (batch
      boundaries).

    The per-order columns are local to the slot and append-only; the pending
    pool, cancellation filter, idle mask, dense/sparse matching and the
    scalar matched-pair walk are the exact array and float operations of the
    historical inline loop — accumulation order included — which is what
    keeps the scalar oracle's bit-identity contract intact for both modes.
    """

    _COLUMNS = (
        "sl_arrival",
        "sl_max_wait",
        "sl_revenue",
        "sl_x",
        "sl_y",
        "sl_dropoff_x",
        "sl_dropoff_y",
        "sl_trip_km",
        "sl_trip_minutes",
    )

    def __init__(
        self,
        engine: VectorizedAssignmentEngine,
        fleet: FleetArrays,
        slot_start: float,
        minutes_per_slot: float,
        collect_events: bool = False,
    ) -> None:
        self.engine = engine
        self.collect_events = collect_events
        self.travel = engine.travel
        self.speed = engine.travel.speed_kmh
        self.avail = fleet.available_at
        self.fleet_x = fleet.x
        self.fleet_y = fleet.y
        self.fleet_served = fleet.served_orders
        self.fleet_earned = fleet.earned_revenue
        # Shift windows: drivers off shift are masked out of the idle set
        # (and therefore out of the sparse index, which is built over the
        # idle subset only).  The mask is skipped entirely for always-online
        # fleets so the fixed-fleet hot path stays a single comparison.
        self.has_shifts = fleet.has_shifts
        self.online_from = fleet.online_from
        self.online_until = fleet.online_until
        for name in self._COLUMNS:
            setattr(self, name, np.empty(0, dtype=float))
        # Python-side copies of the tiny per-order columns: the matched-pair
        # walk reads a handful of scalars per pair, so it runs on plain
        # floats (bit-identical to the float64 array ops) without per-call
        # NumPy overhead.
        self.arrival_list: List[float] = []
        self.max_wait_list: List[float] = []
        # Pending pool: local order indices (ascending), maintained
        # incrementally — arrivals are appended once, expiries and matches
        # filter the array in place, and the per-batch wait/patience columns
        # are O(pending) gathers instead of rebuilt Python list
        # comprehensions.
        self.pending = np.empty(0, dtype=np.intp)
        self.taken = 0
        self.batch_start = slot_start
        self.slot_end = slot_start + minutes_per_slot
        self.served = 0
        self.cancelled = 0
        self.revenue = 0.0
        self.travel_km = 0.0

    @property
    def done(self) -> bool:
        return self.batch_start >= self.slot_end

    @property
    def next_minute(self) -> float:
        """End of the next batch to fire (the current boundary)."""
        return min(self.batch_start + self.engine.batch_minutes, self.slot_end)

    @property
    def unresolved(self) -> int:
        """Orders admitted to this slot that are neither matched nor dropped."""
        return len(self.arrival_list) - self.taken + int(self.pending.size)

    def extend(self, *columns: np.ndarray) -> None:
        """Append admitted orders (one array per ``_COLUMNS`` entry).

        Arrivals must be non-decreasing across calls and at or past every
        boundary already fired — :class:`DispatchSession` validates both; the
        offline path extends exactly once before draining.
        """
        if columns[0].size == 0:
            return
        if self.sl_arrival.size:
            for name, column in zip(self._COLUMNS, columns):
                setattr(self, name, np.concatenate([getattr(self, name), column]))
        else:
            for name, column in zip(self._COLUMNS, columns):
                setattr(self, name, column)
        self.arrival_list.extend(columns[0].tolist())
        self.max_wait_list.extend(columns[1].tolist())

    def drain(self) -> None:
        """Fire every remaining batch boundary up to the slot end."""
        while self.batch_start < self.slot_end:
            self.step()

    def step(self) -> Tuple[float, List[Tuple[int, int]], List[int]]:
        """Fire one batch boundary; returns ``(minute, assigned, cancelled)``.

        ``assigned`` holds ``(local order index, fleet row)`` pairs and
        ``cancelled`` the local indices dropped at this boundary — both stay
        empty unless ``collect_events`` (the offline replay never reads them,
        so it pays nothing for the service's latency bookkeeping).
        """
        engine = self.engine
        travel = self.travel
        speed = self.speed
        avail = self.avail
        fleet_x = self.fleet_x
        fleet_y = self.fleet_y
        sl_arrival = self.sl_arrival
        sl_revenue = self.sl_revenue
        minute = min(self.batch_start + engine.batch_minutes, self.slot_end)
        assigned_events: List[Tuple[int, int]] = []
        cancelled_events: List[int] = []
        # Orders with arrival < batch end join the pending pool.
        take = int(sl_arrival.searchsorted(minute, side="left"))
        pending = self.pending
        if take > self.taken:
            pending = np.concatenate(
                [pending, np.arange(self.taken, take, dtype=np.intp)]
            )
            self.taken = take
        if pending.size == 0:
            self.pending = pending
            self.batch_start = minute
            return minute, assigned_events, cancelled_events
        # Drop orders that have waited past their tolerance; each drop is
        # a rider cancellation, counted once.
        waits = minute - sl_arrival[pending]
        limits = self.sl_max_wait[pending]
        alive_mask = waits <= limits
        alive_index = pending[alive_mask]
        if self.collect_events and alive_index.size != pending.size:
            cancelled_events = pending[~alive_mask].tolist()
        self.cancelled += int(pending.size - alive_index.size)
        pending = alive_index
        if alive_index.size:
            if self.has_shifts:
                idle = np.nonzero(
                    (avail <= minute)
                    & online_mask(self.online_from, self.online_until, minute)
                )[0]
            else:
                idle = np.nonzero(avail <= minute)[0]
            if idle.size:
                alive_waits = waits[alive_mask]
                alive_limits = limits[alive_mask]
                if engine._use_sparse(alive_index.size, idle.size):
                    rows, cols, pair_km = engine._match_sparse(
                        self.sl_x[alive_index],
                        self.sl_y[alive_index],
                        alive_waits,
                        alive_limits,
                        sl_revenue[alive_index],
                        np.take(fleet_x, idle),
                        np.take(fleet_y, idle),
                    )
                else:
                    distance = travel.pairwise_km(
                        self.sl_x[alive_index],
                        self.sl_y[alive_index],
                        np.take(fleet_x, idle),
                        np.take(fleet_y, idle),
                    )
                    # In-place: pickup minutes then the wait-feasibility
                    # sum; the scratch matrix is not needed afterwards.
                    scratch = distance / speed
                    scratch *= 60.0
                    scratch += alive_waits[:, None]
                    feasible = scratch <= alive_limits[:, None]
                    rows, cols = engine.policy.match_pairs(
                        distance, feasible, sl_revenue[alive_index]
                    )
                    pair_km = distance[rows, cols]
                batch_served = 0
                batch_revenue = 0.0
                batch_km = 0.0
                assigned = []
                alive_list = alive_index.tolist()
                arrival_list = self.arrival_list
                max_wait_list = self.max_wait_list
                fleet_served = self.fleet_served
                fleet_earned = self.fleet_earned
                sl_trip_minutes = self.sl_trip_minutes
                sl_trip_km = self.sl_trip_km
                sl_dropoff_x = self.sl_dropoff_x
                sl_dropoff_y = self.sl_dropoff_y
                # The walk over matched pairs stays scalar so float
                # accumulation and driver-state updates happen in the
                # scalar engine's order; the pair count is bounded by
                # min(orders, drivers) per batch.
                for row, col, pickup_km in zip(
                    rows.tolist(), cols.tolist(), pair_km.tolist()
                ):
                    local = alive_list[row]
                    driver = idle[col]
                    # Same float ops as TravelModel.minutes on a scalar.
                    pickup_minutes = pickup_km / speed * 60.0
                    order_arrival = arrival_list[local]
                    if minute + pickup_minutes - order_arrival > max_wait_list[local]:
                        continue
                    start = avail[driver]
                    if order_arrival > start:
                        start = order_arrival
                    avail[driver] = start + pickup_minutes + sl_trip_minutes[local]
                    fleet_x[driver] = sl_dropoff_x[local]
                    fleet_y[driver] = sl_dropoff_y[local]
                    fleet_served[driver] += 1
                    fleet_earned[driver] += sl_revenue[local]
                    batch_served += 1
                    batch_revenue += sl_revenue[local]
                    batch_km += pickup_km + sl_trip_km[local]
                    assigned.append(row)
                    if self.collect_events:
                        assigned_events.append((local, int(driver)))
                self.served += batch_served
                self.revenue += float(batch_revenue)
                self.travel_km += float(batch_km)
                if assigned:
                    if batch_served == alive_index.size:
                        pending = np.empty(0, dtype=np.intp)
                    else:
                        keep = np.ones(alive_index.size, dtype=bool)
                        keep[assigned] = False
                        pending = alive_index[keep]
        self.pending = pending
        self.batch_start = minute
        return minute, assigned_events, cancelled_events


class SessionEvent(NamedTuple):
    """One order resolution observed by a :class:`DispatchSession`.

    ``order`` is the order's admission index (its position in the admitted
    stream, which equals its row in the offline replay's arrival-sorted
    :class:`OrderArrays`); ``driver`` is the matched fleet row, or ``-1`` for
    a rider cancellation; ``minute`` is the simulation minute of the batch
    boundary that resolved it.
    """

    kind: str
    order: int
    driver: int
    minute: float


class DispatchSession:
    """Incremental pending-pool admission over the vectorized engine.

    The always-on dispatch service (:mod:`repro.service`) drives the engine
    through this object: orders are admitted in arrival order as they reach
    the server, batch boundaries fire as the admitted watermark passes them,
    and a graceful drain closes the stream.  The central contract is the
    **determinism bridge**: replaying the admitted stream offline through
    :meth:`VectorizedAssignmentEngine.run` — fresh fleet, same seed —
    reproduces the session's :class:`DispatchMetrics` bit-identically,
    because both paths execute the same :class:`_SlotRun` code.

    Three rules uphold the bridge:

    * **Monotone admission.**  Arrivals must be globally non-decreasing,
      each inside its slot window ``[slot * mps, (slot + 1) * mps)``, slots
      non-decreasing.  Violations raise ``ValueError`` before any state
      changes.
    * **Watermark-gated boundaries.**  A batch boundary ``B`` fires only
      once the admitted watermark reaches ``B`` (or on drain).  Admission at
      a boundary is strict (``searchsorted(side="left")`` excludes
      ``arrival == B``), so no future order can belong to a fired batch.
    * **Lazy slot entry.**  A slot is entered on its first admitted order —
      the same slots, in the same order, as the offline replay's
      ``np.unique(orders.slot)`` walk — closing the previous slot (its
      remaining boundaries run to the slot end) and then drawing the
      repositioning RNG.  Slots that never receive an order are never
      entered and draw nothing.

    Wall-clock concerns — micro-batch caps, adaptive cadence, latency —
    live entirely in the service layer; they decide *when* ``admit`` and
    ``advance`` are called, never what they compute.
    """

    def __init__(
        self,
        engine: VectorizedAssignmentEngine,
        fleet: FleetArrays,
        rng: np.random.Generator,
        day: int = 0,
    ) -> None:
        if len(fleet) == 0:
            raise ValueError("at least one driver is required")
        self.engine = engine
        self.fleet = fleet
        self.rng = rng
        self.day = int(day)
        # Replay inference safety: an explicit engine slot length is used
        # verbatim; otherwise the 30-minute default is enforced through the
        # slot-window validation below, so `infer_minutes_per_slot` on the
        # logged stream lands on exactly 30.0 and the offline replay agrees.
        mps = engine.minutes_per_slot
        self.minutes_per_slot = float(mps) if mps is not None else 30.0
        self._slot: Optional[int] = None
        self._run: Optional[_SlotRun] = None
        self._slot_base = 0
        self._admitted = 0
        self._watermark = float("-inf")
        self._served = 0
        self._cancelled = 0
        self._revenue = 0.0
        self._travel_km = 0.0
        self._metrics: Optional[DispatchMetrics] = None

    # ------------------------------------------------------------------ #

    @property
    def admitted_orders(self) -> int:
        return self._admitted

    @property
    def finished(self) -> bool:
        return self._metrics is not None

    @property
    def watermark(self) -> float:
        """Largest admitted arrival minute (``-inf`` before any admission)."""
        return self._watermark

    @property
    def pending_orders(self) -> int:
        """Admitted orders not yet matched, cancelled or expired with a slot."""
        run = self._run
        if run is None:
            return 0
        return int(run.unresolved)

    def admit(self, orders: OrderArrays) -> List[SessionEvent]:
        """Admit a chunk of orders (arrival-sorted, the OrderArrays invariant).

        Returns the events produced by slot changes inside the chunk (closing
        a slot fires its remaining boundaries).  Call :meth:`advance`
        afterwards to fire the boundaries the new watermark unlocked.
        """
        if self._metrics is not None:
            raise ValueError("session already finished")
        if len(orders) == 0:
            return []
        arrival = orders.arrival_minute
        slot = orders.slot
        if slot.size > 1 and bool(np.any(slot[:-1] > slot[1:])):
            raise ValueError("slot column must be non-decreasing within a chunk")
        if arrival.size > 1 and bool(np.any(arrival[:-1] > arrival[1:])):
            raise ValueError("arrivals must be non-decreasing within a chunk")
        first = float(arrival[0])
        if first < self._watermark:
            raise ValueError(
                f"arrival {first:g} is behind the admitted watermark "
                f"{self._watermark:g}; orders must be admitted in arrival order"
            )
        mps = self.minutes_per_slot
        window_start = slot * mps
        if bool(np.any(arrival < window_start)) or bool(
            np.any(arrival >= window_start + mps)
        ):
            raise ValueError(
                f"every arrival must lie inside its {mps:g}-minute slot window"
            )
        first_slot = int(slot[0])
        if self._slot is not None and first_slot < self._slot:
            raise ValueError(
                f"slot {first_slot} is behind the current slot {self._slot}"
            )
        events: List[SessionEvent] = []
        travel = self.engine.travel
        change = np.nonzero(slot[:-1] != slot[1:])[0] + 1
        group_starts = np.concatenate(([0], change))
        group_ends = np.concatenate((change, [slot.size]))
        for lo, hi in zip(group_starts.tolist(), group_ends.tolist()):
            group_slot = int(slot[lo])
            if self._slot is None or group_slot > self._slot:
                events.extend(self._open_slot(group_slot))
            elif self._run is None:
                raise ValueError(
                    f"slot {group_slot} was already drained; "
                    "admit to a later slot"
                )
            sel = slice(lo, hi)
            x = orders.x[sel]
            y = orders.y[sel]
            dropoff_x = orders.dropoff_x[sel]
            dropoff_y = orders.dropoff_y[sel]
            # Trip legs depend only on the order; the elementwise arithmetic
            # equals the offline replay's whole-stream precomputation.
            trip_km = travel.distance_km(x, y, dropoff_x, dropoff_y)
            trip_minutes = travel.minutes(trip_km)
            self._run.extend(
                arrival[sel] + 0.0,
                orders.max_wait_minutes[sel],
                orders.revenue[sel],
                x,
                y,
                dropoff_x,
                dropoff_y,
                trip_km,
                trip_minutes,
            )
            self._admitted += hi - lo
        self._watermark = float(arrival[-1])
        return events

    def advance(self, drain: bool = False) -> List[SessionEvent]:
        """Fire every batch boundary at or below the admitted watermark.

        ``drain=True`` instead closes the current slot unconditionally —
        remaining boundaries run to the slot end — after which only strictly
        later slots are admissible (shutdown, or a quiet slot the caller
        knows is over).
        """
        if drain:
            return self._close_slot()
        run = self._run
        if run is None:
            return []
        events: List[SessionEvent] = []
        while not run.done and run.next_minute <= self._watermark:
            events.extend(self._step_events(run))
        return events

    def finish(self) -> DispatchMetrics:
        """Close the session and build the run metrics (idempotent).

        Accumulation order matches :meth:`VectorizedAssignmentEngine.run`
        batch → slot → run, so the result is bit-identical to the offline
        replay of the admitted stream.  Events from the final drain are
        dropped here — call ``advance(drain=True)`` first to collect them.
        """
        if self._metrics is not None:
            return self._metrics
        self._close_slot()
        if self._admitted == 0:
            # Matches run()'s empty-stream early return.
            self._metrics = DispatchMetrics(0, 0, 0.0, 0.0, 0.0, 0)
            return self._metrics
        unified_cost = self._travel_km + self.engine.unserved_penalty_km * (
            self._admitted - self._served
        )
        self._metrics = DispatchMetrics(
            served_orders=self._served,
            total_orders=self._admitted,
            total_revenue=float(self._revenue),
            total_travel_km=float(self._travel_km),
            unified_cost=float(unified_cost),
            cancelled_orders=self._cancelled,
        )
        return self._metrics

    # ------------------------------------------------------------------ #

    def _open_slot(self, slot: int) -> List[SessionEvent]:
        events = self._close_slot()
        # Identical to _run_day: slot_start = day_offset + slot * mps with
        # the session pinned to day offset 0.0 (multi-day live streams use
        # absolute slot numbers, see the loadgen's day tiling).
        slot_start = 0.0 + slot * self.minutes_per_slot
        predicted = self.engine._predicted_demand(self.day, slot)
        self.engine.policy.reposition_arrays(
            self.fleet, predicted, self.engine.travel, slot_start, self.rng
        )
        self._slot = slot
        self._slot_base = self._admitted
        self._run = _SlotRun(
            self.engine,
            self.fleet,
            slot_start,
            self.minutes_per_slot,
            collect_events=True,
        )
        return events

    def _close_slot(self) -> List[SessionEvent]:
        run = self._run
        if run is None:
            return []
        events: List[SessionEvent] = []
        while not run.done:
            events.extend(self._step_events(run))
        self._served += run.served
        self._cancelled += run.cancelled
        self._revenue += run.revenue
        self._travel_km += run.travel_km
        self._run = None
        return events

    def _step_events(self, run: _SlotRun) -> List[SessionEvent]:
        minute, assigned, cancelled = run.step()
        base = self._slot_base
        events = [
            SessionEvent("assigned", base + local, driver, minute)
            for local, driver in assigned
        ]
        events.extend(
            SessionEvent("cancelled", base + local, -1, minute)
            for local in cancelled
        )
        return events
