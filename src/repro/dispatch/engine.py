"""Vectorized task-assignment engine over struct-of-arrays state.

This module is the batched counterpart of the per-object loop in
:mod:`repro.dispatch.simulator`.  Orders live in an
:class:`~repro.dispatch.entities.OrderArrays` (one column per field), drivers
in a :class:`~repro.dispatch.entities.FleetArrays`, and every per-minute step
— idle filtering, order-batch collection, candidate distances, feasibility
masks — is an O(1) sequence of array passes instead of per-entity Python
calls.  Only the final walk over the (small) set of matched pairs stays a
Python loop, so metric accumulation happens in exactly the float-addition
order of the scalar engine.

Bit-identical replay
--------------------
The engine is a drop-in replacement for the scalar simulator: given the same
seed it produces the *identical* :class:`~repro.dispatch.entities.DispatchMetrics`
(not merely statistically equivalent).  Three properties make that hold:

1. **Deterministic RNG draw order.**  All randomness is consumed through the
   policies' ``reposition_arrays`` kernels, which draw in a documented, fixed
   order per slot: one ``rng.choice`` over the deficit/revenue cells, then one
   ``rng.random((movers, 2))`` whose rows are each mover's (x, y) jitter.
   NumPy fills array draws from the bit generator in C order, so this equals
   the scalar engine's interleaved per-driver scalar draws.  No draw ever
   depends on iteration order over a dict or set.
2. **Elementwise-identical kernels.**  The batched distance/feasibility maths
   applies the same IEEE-754 operations per element as the scalar calls, and
   the matching kernels in :mod:`repro.dispatch.matching` are shared verbatim
   by both engines.
3. **Accumulation order.**  Served/revenue/travel sums are grouped per batch,
   per slot, then per run — the same float-addition grouping as the scalar
   loops.

These invariants are asserted by ``tests/dispatch/test_engine_equivalence.py``
which replays both engines across seeds, policies and fleet sizes.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.dispatch.demand import PredictedDemandProvider
from repro.dispatch.entities import DispatchMetrics, FleetArrays, OrderArrays
from repro.dispatch.travel import TravelModel


class ArrayPolicy(Protocol):
    """Array-kernel strategy interface implemented by POLAR and LS."""

    name: str

    def reposition_arrays(
        self,
        fleet: FleetArrays,
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Move idle drivers based on the predicted demand (in place)."""
        ...

    def match_pairs(
        self,
        distance: np.ndarray,
        feasible: np.ndarray,
        revenue: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Match an ``(orders, drivers)`` candidate matrix.

        ``distance`` holds pickup distances, ``feasible`` the wait-constraint
        mask and ``revenue`` the per-order revenues (used by revenue-weighted
        objectives).  Returns the matched ``(rows, cols)`` local index pairs
        in the scalar assignment's iteration order.
        """
        ...


def supports_array_kernels(policy: object) -> bool:
    """True if ``policy`` implements the vectorized kernel interface."""
    return hasattr(policy, "reposition_arrays") and hasattr(policy, "match_pairs")


class VectorizedAssignmentEngine:
    """Runs one dispatch policy over array state, slot by slot.

    Parameters mirror :class:`~repro.dispatch.simulator.TaskAssignmentSimulator`;
    the simulator instantiates this engine when ``engine="vector"``.
    """

    def __init__(
        self,
        policy: ArrayPolicy,
        travel: TravelModel,
        demand: Optional[PredictedDemandProvider] = None,
        batch_minutes: float = 2.0,
        unserved_penalty_km: float = 5.0,
    ) -> None:
        self.policy = policy
        self.travel = travel
        self.demand = demand
        self.batch_minutes = batch_minutes
        self.unserved_penalty_km = unserved_penalty_km

    # ------------------------------------------------------------------ #

    def run(
        self,
        orders: OrderArrays,
        fleet: FleetArrays,
        rng: np.random.Generator,
        day: int = 0,
        slots: Optional[Sequence[int]] = None,
    ) -> DispatchMetrics:
        """Simulate the assignment of ``orders`` to the ``fleet`` in place."""
        if len(orders) == 0:
            return DispatchMetrics(0, 0, 0.0, 0.0, 0.0)
        if len(fleet) == 0:
            raise ValueError("at least one driver is required")
        if slots is None:
            slots = [int(s) for s in np.unique(orders.slot)]
        minutes_per_slot = self._minutes_per_slot(orders, slots)
        # Trip legs depend only on the order, so they are precomputed for the
        # whole stream in two array passes.
        trip_km = self.travel.distance_km(
            orders.x, orders.y, orders.dropoff_x, orders.dropoff_y
        )
        trip_minutes = self.travel.minutes(trip_km)
        served = 0
        revenue = 0.0
        travel_km = 0.0
        # When the slot column is non-decreasing (the OrderArrays invariant),
        # each slot is a contiguous index range found by bisection instead of
        # a full-array scan per slot.
        slot_column_sorted = bool(np.all(orders.slot[:-1] <= orders.slot[1:]))
        for slot in slots:
            slot_start = slot * minutes_per_slot
            predicted = self._predicted_demand(day, slot)
            self.policy.reposition_arrays(
                fleet, predicted, self.travel, slot_start, rng
            )
            if slot_column_sorted:
                lo = int(orders.slot.searchsorted(slot, side="left"))
                hi = int(orders.slot.searchsorted(slot, side="right"))
                in_slot = np.arange(lo, hi, dtype=np.intp)
            else:
                in_slot = np.nonzero(orders.slot == slot)[0]
            if in_slot.size:
                # Stable sort matches the scalar engine's per-slot
                # ``sorted(..., key=arrival_minute)``.
                in_slot = in_slot[
                    np.argsort(orders.arrival_minute[in_slot], kind="stable")
                ]
            slot_served, slot_revenue, slot_km = self._run_slot(
                orders, in_slot, fleet, slot_start, minutes_per_slot, trip_km, trip_minutes
            )
            served += slot_served
            revenue += slot_revenue
            travel_km += slot_km
        total_orders = int(np.isin(orders.slot, np.asarray(list(slots))).sum())
        unified_cost = travel_km + self.unserved_penalty_km * (total_orders - served)
        return DispatchMetrics(
            served_orders=served,
            total_orders=total_orders,
            total_revenue=float(revenue),
            total_travel_km=float(travel_km),
            unified_cost=float(unified_cost),
        )

    # ------------------------------------------------------------------ #

    def _minutes_per_slot(self, orders: OrderArrays, slots: Sequence[int]) -> float:
        max_slot = max(slots)
        latest = float(orders.arrival_minute.max())
        if max_slot <= 0:
            return max(latest, 30.0)
        return max(30.0, latest / (max_slot + 1))

    def _predicted_demand(self, day: int, slot: int) -> Optional[np.ndarray]:
        if self.demand is None:
            return None
        if not self.demand.has_slot(day, slot):
            return None
        return self.demand.hgrid_demand(day, slot)

    def _run_slot(
        self,
        orders: OrderArrays,
        slot_indices: np.ndarray,
        fleet: FleetArrays,
        slot_start: float,
        minutes_per_slot: float,
        trip_km: np.ndarray,
        trip_minutes: np.ndarray,
    ) -> Tuple[int, float, float]:
        served = 0
        revenue = 0.0
        travel_km = 0.0
        if slot_indices.size == 0:
            return served, revenue, travel_km
        policy_match = self.policy.match_pairs
        travel = self.travel
        speed = travel.speed_kmh
        avail = fleet.available_at
        fleet_x = fleet.x
        fleet_y = fleet.y
        fleet_served = fleet.served_orders
        fleet_earned = fleet.earned_revenue
        dropoff_x = orders.dropoff_x
        dropoff_y = orders.dropoff_y
        order_revenue = orders.revenue
        # Per-slot order columns, sorted by arrival (the slot_indices order).
        sl_arrival = orders.arrival_minute[slot_indices]
        sl_max_wait = orders.max_wait_minutes[slot_indices]
        sl_revenue = order_revenue[slot_indices]
        sl_x = orders.x[slot_indices]
        sl_y = orders.y[slot_indices]
        # Python-side copies of the tiny per-order columns: the pending pool
        # is a handful of orders, so its bookkeeping runs on plain floats
        # (bit-identical to the float64 array ops) without per-call NumPy
        # overhead.
        arrival_list = sl_arrival.tolist()
        max_wait_list = sl_max_wait.tolist()
        # Pending orders: (local index, arrival, patience) triples.
        pending: list = []
        taken = 0
        batch_start = slot_start
        slot_end = slot_start + minutes_per_slot
        while batch_start < slot_end:
            minute = min(batch_start + self.batch_minutes, slot_end)
            # Orders with arrival < batch end join the pending pool.
            take = int(sl_arrival.searchsorted(minute, side="left"))
            while taken < take:
                pending.append((taken, arrival_list[taken], max_wait_list[taken]))
                taken += 1
            if not pending:
                batch_start = minute
                continue
            # Drop orders that have waited past their tolerance.
            alive = [
                entry for entry in pending if minute - entry[1] <= entry[2]
            ]
            pending = alive
            if alive:
                idle = np.nonzero(avail <= minute)[0]
                if idle.size:
                    alive_index = np.array([entry[0] for entry in alive], dtype=np.intp)
                    distance = travel.pairwise_km(
                        sl_x[alive_index],
                        sl_y[alive_index],
                        np.take(fleet_x, idle),
                        np.take(fleet_y, idle),
                    )
                    # In-place: pickup minutes then the wait-feasibility sum;
                    # the scratch matrix is not needed afterwards (the pair
                    # loop recomputes its scalar pickup from `distance`).
                    scratch = distance / speed
                    scratch *= 60.0
                    scratch += np.array(
                        [minute - entry[1] for entry in alive], dtype=float
                    )[:, None]
                    feasible = scratch <= np.array(
                        [entry[2] for entry in alive], dtype=float
                    )[:, None]
                    rows, cols = policy_match(
                        distance, feasible, sl_revenue[alive_index]
                    )
                    batch_served = 0
                    batch_revenue = 0.0
                    batch_km = 0.0
                    assigned = []
                    # The walk over matched pairs stays scalar so float
                    # accumulation and driver-state updates happen in the
                    # scalar engine's order; the pair count is bounded by
                    # min(orders, drivers) per batch.
                    for row, col in zip(rows.tolist(), cols.tolist()):
                        entry = alive[row]
                        driver = idle[col]
                        pickup_km = distance[row, col]
                        # Same float ops as TravelModel.minutes on a scalar.
                        pickup_minutes = pickup_km / speed * 60.0
                        order_arrival = entry[1]
                        if minute + pickup_minutes - order_arrival > entry[2]:
                            continue
                        index = slot_indices[entry[0]]
                        start = avail[driver]
                        if order_arrival > start:
                            start = order_arrival
                        avail[driver] = start + pickup_minutes + trip_minutes[index]
                        fleet_x[driver] = dropoff_x[index]
                        fleet_y[driver] = dropoff_y[index]
                        fleet_served[driver] += 1
                        fleet_earned[driver] += order_revenue[index]
                        batch_served += 1
                        batch_revenue += order_revenue[index]
                        batch_km += pickup_km + trip_km[index]
                        assigned.append(row)
                    served += batch_served
                    revenue += float(batch_revenue)
                    travel_km += float(batch_km)
                    if assigned:
                        if batch_served == len(alive):
                            pending = []
                        else:
                            taken_rows = set(assigned)
                            pending = [
                                entry
                                for position, entry in enumerate(alive)
                                if position not in taken_rows
                            ]
            batch_start = minute
        return served, revenue, travel_km
