"""Grid-bucketed spatial index for dispatch candidate pruning.

The paper's central data structure is a grid over the study area chosen to
make spatial aggregation cheap; this module reuses the same cell geometry —
the ``min(int(coord * resolution), resolution - 1)`` binning of
:meth:`repro.core.grid.GridSpec.cell_of` and
:func:`repro.dispatch.kernels.cell_supply` — as a *spatial index* over point
sets (idle drivers).  The sparse matching pipeline in
:mod:`repro.dispatch.engine` builds one :class:`GridBucketIndex` per
assignment batch and answers, for every pending order, "which drivers could
possibly be within this order's feasible pickup radius?" without touching the
rest of the fleet.

Two query levels are exposed:

* :meth:`GridBucketIndex.candidates_in_box` — the pruning primitive: indices
  of every point whose grid cell intersects the axis-aligned box of
  half-width ``radius_km`` around the query point.  This is a conservative
  *superset* of the points within ``radius_km`` under both the Manhattan and
  the Euclidean metric (``|dx_km| <= d`` holds for both), widened by one cell
  ring so floating-point rounding of the box edges can never exclude a point
  at exactly the radius boundary.  Callers apply their own exact test on the
  candidates (the engine re-runs the dense path's bit-identical feasibility
  arithmetic), so conservative pruning never changes results — only how much
  work is skipped.
* :meth:`GridBucketIndex.query_radius` — the exact query: candidate pruning
  followed by an exact distance filter.  Property tests assert it equals the
  brute-force distance mask over the full point set.

The bucket layout is CSR-style: one stable ``argsort`` over flat cell ids at
build time, then each cell (and each contiguous run of cells in a grid row)
is a slice — so a box query is one slice per grid row, not a scan over
points.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dispatch.travel import TravelModel


def default_resolution(count: int) -> int:
    """Grid side used when the caller does not pin one.

    Scales with ``sqrt(count / 2)`` so the expected bucket occupancy stays a
    small constant, clamped to ``[1, 96]`` — below ~2 points a finer grid
    only adds slicing overhead, above 96x96 the per-query row slices start to
    dominate the distance work they save.
    """
    if count <= 1:
        return 1
    return max(1, min(96, int(math.sqrt(count / 2.0))))


class GridBucketIndex:
    """Bins points on the unit square into grid cells and answers radius queries.

    Parameters
    ----------
    x, y:
        Normalised point coordinates in ``[0, 1)`` (the dispatch substrate's
        invariant; values are clipped into range defensively).
    travel:
        The :class:`~repro.dispatch.travel.TravelModel` whose city extent
        converts the ``radius_km`` of queries into normalised half-widths and
        whose metric defines the exact distances of :meth:`query_radius`.
    resolution:
        Cells per side; defaults to :func:`default_resolution` of the point
        count.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        travel: TravelModel,
        resolution: int | None = None,
    ) -> None:
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        if self.x.ndim != 1 or self.x.shape != self.y.shape:
            raise ValueError("x and y must be equally sized 1-D arrays")
        self.travel = travel
        if resolution is None:
            resolution = default_resolution(self.x.size)
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        if resolution > 255:
            raise ValueError("resolution must be at most 255 (cell ids are uint16)")
        self.resolution = int(resolution)
        res = self.resolution
        # Same binning as GridSpec.cell_of / kernels.cell_supply; the clip
        # guards against callers passing exactly 1.0 (the fleet arrays clip
        # to nextafter(1, 0), but raw inputs may not).
        col = np.clip((self.x * res).astype(int), 0, res - 1)
        row = np.clip((self.y * res).astype(int), 0, res - 1)
        # uint16 holds every flat cell id (resolution is capped well below
        # 256) and NumPy's stable sort on 16-bit integers is a radix sort —
        # an order of magnitude faster than the int64 timsort at fleet
        # scale, and this build runs once per assignment batch.
        flat = (row * res + col).astype(np.uint16)
        # CSR layout: point indices stably sorted by cell, plus per-cell
        # start offsets.  Within a cell indices stay ascending (stable sort).
        self._order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=res * res)
        self._starts = np.zeros(res * res + 1, dtype=np.intp)
        np.cumsum(counts, out=self._starts[1:])

    def __len__(self) -> int:
        return int(self.x.size)

    # ------------------------------------------------------------------ #

    def candidates_in_box(self, x: float, y: float, radius_km: float) -> np.ndarray:
        """Indices of points whose cell meets the query box (cell-major order).

        The box is the axis-aligned square of half-width ``radius_km``
        (converted to normalised units per axis) centred on ``(x, y)``,
        widened by one extra cell ring on every side.  The result is a
        superset of every point within ``radius_km`` of the query under
        either travel metric; a negative radius returns no candidates.  The
        index order is deterministic but unspecified (cell-major for partial
        boxes, raw insertion order when the box covers the whole grid) — hot
        callers sort once after filtering, and :meth:`query_radius` returns
        ascending indices.
        """
        if radius_km < 0 or self.x.size == 0:
            return np.empty(0, dtype=np.intp)
        res = self.resolution
        half_x = radius_km / self.travel.width_km
        half_y = radius_km / self.travel.height_km
        # The +-1 cell ring absorbs any floating-point rounding of the box
        # edges, keeping the superset property exact rather than approximate.
        c0 = max(0, int(math.floor((x - half_x) * res)) - 1)
        c1 = min(res - 1, int(math.floor((x + half_x) * res)) + 1)
        r0 = max(0, int(math.floor((y - half_y) * res)) - 1)
        r1 = min(res - 1, int(math.floor((y + half_y) * res)) + 1)
        if c0 > c1 or r0 > r1:
            return np.empty(0, dtype=np.intp)
        starts = self._starts
        order = self._order
        if r0 == 0 and r1 == res - 1 and c0 == 0 and c1 == res - 1:
            return np.arange(self.x.size, dtype=np.intp)
        parts = [
            order[starts[row * res + c0] : starts[row * res + c1 + 1]]
            for row in range(r0, r1 + 1)
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def candidates_in_boxes(
        self, xs: np.ndarray, ys: np.ndarray, radii_km: np.ndarray
    ):
        """Batched radius-candidate queries with no per-query Python work.

        Returns ``(query_ids, point_indices)`` — one entry per candidate,
        grouped by ascending query id — computed as a single multi-range
        gather over the CSR layout: the per-query cell boxes are expanded to
        per-grid-row slice bounds, and every slice is materialised with one
        C-level ``arange``/``repeat`` pass.  Each result is a subset of the
        per-query :meth:`candidates_in_box` (the per-row column budget prunes
        the box's corner cells down to the metric's reachable diamond) and
        still a superset of every point within ``radius_km`` of its query;
        queries with a negative radius contribute no candidates.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        radii_km = np.asarray(radii_km, dtype=float)
        empty = np.empty(0, dtype=np.intp)
        if xs.size == 0 or self.x.size == 0:
            return empty, empty.copy()
        res = self.resolution
        half_x = radii_km / self.travel.width_km
        half_y = radii_km / self.travel.height_km
        c0 = np.maximum(np.floor((xs - half_x) * res).astype(np.intp) - 1, 0)
        c1 = np.minimum(np.floor((xs + half_x) * res).astype(np.intp) + 1, res - 1)
        r0 = np.maximum(np.floor((ys - half_y) * res).astype(np.intp) - 1, 0)
        r1 = np.minimum(np.floor((ys + half_y) * res).astype(np.intp) + 1, res - 1)
        valid = (radii_km >= 0) & (c0 <= c1) & (r0 <= r1)
        # One slice per (query, grid row of its box).
        box_rows = np.where(valid, r1 - r0 + 1, 0)
        slice_query = np.repeat(np.arange(xs.size, dtype=np.intp), box_rows)
        if slice_query.size == 0:
            return empty, empty.copy()
        offsets = np.cumsum(box_rows) - box_rows
        local_row = (
            np.arange(slice_query.size, dtype=np.intp)
            - np.repeat(offsets, box_rows)
            + r0[slice_query]
        )
        # Shrink each slice's column span to the row's remaining distance
        # budget: a point in grid row r is at least ``dy`` from the query, so
        # its x-offset can use only what the metric leaves of the radius
        # (radius - dy for Manhattan, sqrt(radius^2 - dy^2) for Euclidean).
        # This prunes the corner cells of the bounding box — the box is a 2x
        # (Manhattan) overshoot of the reachable diamond — while the one-cell
        # widening keeps every within-radius point a candidate under float
        # rounding.
        query_y = ys[slice_query]
        dy = np.maximum(local_row / res - query_y, query_y - (local_row + 1) / res)
        dy = np.maximum(dy, 0.0) * self.travel.height_km
        # Micron-scale slack so float rounding of the row-band distance can
        # never disqualify a point sitting exactly on the radius.
        dy = np.maximum(dy - 1e-9, 0.0)
        radius_rep = radii_km[slice_query]
        # A grid row is reachable iff its vertical distance alone fits in the
        # radius — test dy directly so the check also fires for the euclidean
        # branch, whose budget is clamped non-negative below.
        in_reach = dy <= radius_rep
        if self.travel.metric == "euclidean":
            budget = np.sqrt(np.maximum(radius_rep * radius_rep - dy * dy, 0.0))
        else:
            budget = radius_rep - dy
        half = np.where(in_reach, budget, 0.0) / self.travel.width_km
        query_x = xs[slice_query]
        c0s = np.maximum(np.floor((query_x - half) * res).astype(np.intp) - 1, 0)
        c1s = np.minimum(np.floor((query_x + half) * res).astype(np.intp) + 1, res - 1)
        base = local_row * res
        slice_start = self._starts[base + c0s]
        slice_stop = self._starts[base + c1s + 1]
        lengths = np.where(in_reach, slice_stop - slice_start, 0)
        slice_start = np.where(in_reach, slice_start, 0)
        total = int(lengths.sum())
        if total == 0:
            return empty, empty.copy()
        point_offsets = np.cumsum(lengths) - lengths
        flat = (
            np.arange(total, dtype=np.intp)
            - np.repeat(point_offsets, lengths)
            + np.repeat(slice_start, lengths)
        )
        return np.repeat(slice_query, lengths), self._order[flat]

    def query_radius(self, x: float, y: float, radius_km: float):
        """Exact radius query: ``(indices, distances_km)`` of points within range.

        Equals the brute-force ``distance <= radius_km`` mask over the full
        point set (same :meth:`TravelModel.distance_km` arithmetic), indices
        ascending.
        """
        candidates = self.candidates_in_box(x, y, radius_km)
        if candidates.size == 0:
            return candidates, np.empty(0, dtype=float)
        candidates = np.sort(candidates, kind="stable")
        distance = self.travel.distance_km(
            x, y, self.x[candidates], self.y[candidates]
        )
        keep = distance <= radius_km
        return candidates[keep], np.asarray(distance)[keep]
