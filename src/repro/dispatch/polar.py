"""POLAR-style two-stage prediction-based task assignment.

POLAR (Tong et al., VLDB 2017) maximises the number of served orders with a
two-stage scheme: a *guidance* stage that pre-assigns idle drivers towards
regions whose predicted demand exceeds the local supply, and an *assignment*
stage that matches realised orders to nearby idle drivers.  This
reimplementation keeps both stages:

* :meth:`POLARDispatcher.reposition` computes the per-HGrid supply deficit
  (predicted demand minus idle drivers present) and relocates surplus drivers
  towards the cells with the largest deficit;
* :meth:`POLARDispatcher.assign` solves a minimum-pickup-distance bipartite
  matching (maximising the number of feasible matches), the served-order
  objective of the original system.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.dispatch.entities import Driver, FleetArrays, Order
from repro.dispatch.kernels import cell_supply, move_drivers
from repro.dispatch.matching import (
    greedy_matching,
    greedy_pairs_masked,
    min_cost_pairs,
    optimal_matching,
)
from repro.dispatch.travel import TravelModel


class POLARDispatcher:
    """Two-stage served-orders-maximising dispatcher."""

    name = "polar"

    def __init__(
        self,
        reposition_fraction: float = 0.5,
        max_reposition_km: float = 6.0,
        use_optimal_matching: bool = True,
    ) -> None:
        if not 0.0 <= reposition_fraction <= 1.0:
            raise ValueError("reposition_fraction must be in [0, 1]")
        if max_reposition_km <= 0:
            raise ValueError("max_reposition_km must be positive")
        self.reposition_fraction = reposition_fraction
        self.max_reposition_km = max_reposition_km
        self.use_optimal_matching = use_optimal_matching

    @property
    def match_order(self) -> str:
        """Emission order of :meth:`match_pairs` (sparse-merge contract).

        The Hungarian solver emits pairs by ascending row, the greedy scan by
        ascending (cost, row-major position); the sparse pipeline in
        :mod:`repro.dispatch.engine` merges per-component pairs back into
        this order.
        """
        return "row" if self.use_optimal_matching else "cost"

    # ------------------------------------------------------------------ #
    # Stage 1: guidance / repositioning
    # ------------------------------------------------------------------ #

    def reposition(
        self,
        drivers: Sequence[Driver],
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Move a fraction of idle drivers towards under-supplied HGrids."""
        if predicted_hgrid_demand is None:
            return
        demand = np.asarray(predicted_hgrid_demand, dtype=float)
        resolution = demand.shape[0]
        idle = [driver for driver in drivers if driver.is_idle(minute)]
        if not idle:
            return
        supply = np.zeros_like(demand)
        for driver in idle:
            col = min(int(driver.x * resolution), resolution - 1)
            row = min(int(driver.y * resolution), resolution - 1)
            supply[row, col] += 1.0
        deficit = demand - supply
        deficit[deficit < 0] = 0.0
        total_deficit = deficit.sum()
        if total_deficit <= 0:
            return
        surplus_drivers = self._surplus_drivers(idle, demand, supply, resolution)
        move_count = int(round(len(surplus_drivers) * self.reposition_fraction))
        if move_count == 0:
            return
        probabilities = (deficit / total_deficit).ravel()
        chosen_cells = rng.choice(probabilities.size, size=move_count, p=probabilities)
        for driver, cell in zip(surplus_drivers[:move_count], chosen_cells):
            row, col = divmod(int(cell), resolution)
            target_x = (col + rng.random()) / resolution
            target_y = (row + rng.random()) / resolution
            distance = travel.distance_km(driver.x, driver.y, target_x, target_y)
            if distance > self.max_reposition_km:
                continue
            driver.x = float(np.clip(target_x, 0.0, np.nextafter(1.0, 0.0)))
            driver.y = float(np.clip(target_y, 0.0, np.nextafter(1.0, 0.0)))
            driver.available_at = minute + travel.minutes(distance)

    def _surplus_drivers(
        self,
        idle: Sequence[Driver],
        demand: np.ndarray,
        supply: np.ndarray,
        resolution: int,
    ) -> list[Driver]:
        """Idle drivers standing in cells where supply already exceeds demand."""
        surplus: list[Driver] = []
        for driver in idle:
            col = min(int(driver.x * resolution), resolution - 1)
            row = min(int(driver.y * resolution), resolution - 1)
            if supply[row, col] > demand[row, col]:
                surplus.append(driver)
        return surplus

    # ------------------------------------------------------------------ #
    # Stage 2: assignment
    # ------------------------------------------------------------------ #

    def assign(
        self,
        orders: Sequence[Order],
        drivers: Sequence[Driver],
        travel: TravelModel,
        minute: float,
    ) -> Dict[int, int]:
        """Minimum-pickup-distance matching subject to the waiting-time limit."""
        if not orders or not drivers:
            return {}
        order_x = np.array([order.x for order in orders])
        order_y = np.array([order.y for order in orders])
        driver_x = np.array([driver.x for driver in drivers])
        driver_y = np.array([driver.y for driver in drivers])
        distance = travel.distance_km(
            driver_x[None, :], driver_y[None, :], order_x[:, None], order_y[:, None]
        )
        pickup_minutes = travel.minutes(distance)
        waits = np.array(
            [minute - order.arrival_minute for order in orders], dtype=float
        )
        limits = np.array([order.max_wait_minutes for order in orders], dtype=float)
        feasible = pickup_minutes + waits[:, None] <= limits[:, None]
        cost = np.where(feasible, distance, np.inf)
        if self.use_optimal_matching:
            return optimal_matching(cost, max_cost=self.max_reposition_km * 10)
        return greedy_matching(cost, max_cost=self.max_reposition_km * 10)

    # ------------------------------------------------------------------ #
    # Array kernels (vectorized engine)
    # ------------------------------------------------------------------ #

    def reposition_arrays(
        self,
        fleet: FleetArrays,
        predicted_hgrid_demand: Optional[np.ndarray],
        travel: TravelModel,
        minute: float,
        rng: np.random.Generator,
    ) -> None:
        """Vectorized :meth:`reposition` over struct-of-arrays fleet state.

        Consumes the RNG in exactly the scalar method's draw order — one
        ``rng.choice`` for the target cells, then one ``rng.random((k, 2))``
        whose rows are each mover's (x, y) jitter — so both engines advance a
        shared seed identically.
        """
        if predicted_hgrid_demand is None:
            return
        demand = np.asarray(predicted_hgrid_demand, dtype=float)
        resolution = demand.shape[0]
        idle = fleet.idle_indices(minute)
        if idle.size == 0:
            return
        rows, cols, supply = cell_supply(fleet, idle, demand)
        deficit = demand - supply
        deficit[deficit < 0] = 0.0
        total_deficit = deficit.sum()
        if total_deficit <= 0:
            return
        surplus = idle[supply[rows, cols] > demand[rows, cols]]
        move_count = int(round(surplus.size * self.reposition_fraction))
        if move_count == 0:
            return
        probabilities = (deficit / total_deficit).ravel()
        chosen_cells = rng.choice(probabilities.size, size=move_count, p=probabilities)
        jitter = rng.random((move_count, 2))
        move_drivers(
            fleet,
            surplus[:move_count],
            chosen_cells,
            jitter,
            resolution,
            travel,
            minute,
            self.max_reposition_km,
        )

    def match_pairs(
        self,
        distance: np.ndarray,
        feasible: np.ndarray,
        revenue: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`assign` objective on a candidate matrix.

        Minimum-pickup-distance matching over the feasible pairs; the pairs
        come back in the scalar assignment dict's iteration order.  POLAR's
        served-orders objective ignores ``revenue``.
        """
        if self.use_optimal_matching:
            return min_cost_pairs(distance, feasible, max_cost=self.max_reposition_km * 10)
        return greedy_pairs_masked(distance, feasible, max_cost=self.max_reposition_km * 10)

    def match_single_order(self, distance: np.ndarray, revenue: float) -> int:
        """Star-component fast path: best driver for one order, or ``-1``.

        Both POLAR solvers reduce to the same rule on a fully-feasible
        ``1 x k`` block: the minimum-distance driver within the cost cut-off,
        ties to the smallest index — exactly
        :func:`scipy.optimize.linear_sum_assignment`'s (and the greedy
        scan's) tie-break on that block.
        """
        best = int(np.argmin(distance))
        if distance[best] > self.max_reposition_km * 10:
            return -1
        return best

    def match_single_driver(self, distance: np.ndarray, revenue: np.ndarray) -> int:
        """Star-component fast path: best order for one driver, or ``-1``."""
        best = int(np.argmin(distance))
        if distance[best] > self.max_reposition_km * 10:
            return -1
        return best
