"""Travel model: distances and travel times on the normalised city plane."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TravelModel:
    """Converts normalised coordinates into kilometres and minutes.

    Attributes
    ----------
    width_km, height_km:
        Physical extent of the study area.
    speed_kmh:
        Average driving speed (the paper's cities are dense urban areas, so a
        conservative 24 km/h default is used).
    metric:
        ``"euclidean"`` or ``"manhattan"`` street distance.
    """

    width_km: float
    height_km: float
    speed_kmh: float = 24.0
    metric: str = "manhattan"

    def __post_init__(self) -> None:
        if self.width_km <= 0 or self.height_km <= 0:
            raise ValueError("city extent must be positive")
        if self.speed_kmh <= 0:
            raise ValueError("speed must be positive")
        if self.metric not in ("euclidean", "manhattan"):
            raise ValueError("metric must be 'euclidean' or 'manhattan'")

    def distance_km(
        self,
        x0: np.ndarray | float,
        y0: np.ndarray | float,
        x1: np.ndarray | float,
        y1: np.ndarray | float,
    ) -> np.ndarray | float:
        """Street distance in kilometres between two normalised points."""
        dx = (np.asarray(x1, dtype=float) - np.asarray(x0, dtype=float)) * self.width_km
        dy = (np.asarray(y1, dtype=float) - np.asarray(y0, dtype=float)) * self.height_km
        if self.metric == "euclidean":
            result = np.sqrt(dx * dx + dy * dy)
        else:
            result = np.abs(dx) + np.abs(dy)
        if np.isscalar(x0) and np.isscalar(x1):
            return float(result)
        return result

    def minutes(self, distance_km: np.ndarray | float) -> np.ndarray | float:
        """Travel time in minutes for a distance in kilometres."""
        distance_km = np.asarray(distance_km, dtype=float)
        result = distance_km / self.speed_kmh * 60.0
        if result.ndim == 0:
            return float(result)
        return result

    def travel_minutes(
        self,
        x0: np.ndarray | float,
        y0: np.ndarray | float,
        x1: np.ndarray | float,
        y1: np.ndarray | float,
    ) -> np.ndarray | float:
        """Travel time in minutes between two normalised points."""
        return self.minutes(self.distance_km(x0, y0, x1, y1))

    @staticmethod
    def for_city(city) -> "TravelModel":
        """Travel model matching a :class:`~repro.data.city.CityConfig`."""
        return TravelModel(width_km=city.width_km, height_km=city.height_km)
