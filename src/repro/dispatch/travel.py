"""Travel model: distances and travel times on the normalised city plane."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TravelModel:
    """Converts normalised coordinates into kilometres and minutes.

    Attributes
    ----------
    width_km, height_km:
        Physical extent of the study area.
    speed_kmh:
        Average driving speed (the paper's cities are dense urban areas, so a
        conservative 24 km/h default is used).
    metric:
        ``"euclidean"`` or ``"manhattan"`` street distance.
    """

    width_km: float
    height_km: float
    speed_kmh: float = 24.0
    metric: str = "manhattan"

    def __post_init__(self) -> None:
        if self.width_km <= 0 or self.height_km <= 0:
            raise ValueError("city extent must be positive")
        if self.speed_kmh <= 0:
            raise ValueError("speed must be positive")
        if self.metric not in ("euclidean", "manhattan"):
            raise ValueError("metric must be 'euclidean' or 'manhattan'")

    def distance_km(
        self,
        x0: np.ndarray | float,
        y0: np.ndarray | float,
        x1: np.ndarray | float,
        y1: np.ndarray | float,
    ) -> np.ndarray | float:
        """Street distance in kilometres between two normalised points."""
        dx = (np.asarray(x1, dtype=float) - np.asarray(x0, dtype=float)) * self.width_km
        dy = (np.asarray(y1, dtype=float) - np.asarray(y0, dtype=float)) * self.height_km
        if self.metric == "euclidean":
            result = np.sqrt(dx * dx + dy * dy)
        else:
            result = np.abs(dx) + np.abs(dy)
        if np.isscalar(x0) and np.isscalar(x1):
            return float(result)
        return result

    def minutes(self, distance_km: np.ndarray | float) -> np.ndarray | float:
        """Travel time in minutes for a distance in kilometres."""
        distance_km = np.asarray(distance_km, dtype=float)
        result = distance_km / self.speed_kmh * 60.0
        if result.ndim == 0:
            return float(result)
        return result

    def pairwise_km(
        self,
        origin_x: np.ndarray,
        origin_y: np.ndarray,
        dest_x: np.ndarray,
        dest_y: np.ndarray,
    ) -> np.ndarray:
        """Batched candidate distances: an ``(origins, destinations)`` matrix.

        Row ``i`` holds the street distance from origin ``i`` to every
        destination.  Elementwise this is exactly :meth:`distance_km` applied
        to each (origin, destination) pair, so the matrix entries are
        bit-identical to the scalar calls the per-entity loop would make.
        """
        origin_x = np.asarray(origin_x, dtype=float)
        origin_y = np.asarray(origin_y, dtype=float)
        dest_x = np.asarray(dest_x, dtype=float)
        dest_y = np.asarray(dest_y, dtype=float)
        # Inlined distance_km(dest, origin) without the scalar-path checks;
        # the operand order matches the policies' broadcast calls.
        dx = (origin_x[:, None] - dest_x[None, :]) * self.width_km
        dy = (origin_y[:, None] - dest_y[None, :]) * self.height_km
        if self.metric == "euclidean":
            return np.sqrt(dx * dx + dy * dy)
        return np.abs(dx) + np.abs(dy)

    def pairwise_minutes(
        self,
        origin_x: np.ndarray,
        origin_y: np.ndarray,
        dest_x: np.ndarray,
        dest_y: np.ndarray,
    ) -> np.ndarray:
        """Batched candidate travel times (minutes) as an ``(origins, destinations)`` matrix."""
        return self.minutes(self.pairwise_km(origin_x, origin_y, dest_x, dest_y))

    def travel_minutes(
        self,
        x0: np.ndarray | float,
        y0: np.ndarray | float,
        x1: np.ndarray | float,
        y1: np.ndarray | float,
    ) -> np.ndarray | float:
        """Travel time in minutes between two normalised points."""
        return self.minutes(self.distance_km(x0, y0, x1, y1))

    @staticmethod
    def for_city(city) -> "TravelModel":
        """Travel model matching a :class:`~repro.data.city.CityConfig`."""
        return TravelModel(width_km=city.width_km, height_km=city.height_km)
