"""Dispatch case-study substrate: task assignment (POLAR, LS) and route planning (DAIF).

The paper's case study shows that selecting the optimal grid size improves the
downstream performance of prediction-based dispatching algorithms.  The
original systems are Java implementations; this package provides NumPy/Python
simulators that consume the same inputs (realised orders plus grid-level
predicted demand) and expose the same metrics (served orders, total revenue,
unified cost), preserving the property that matters for the experiments:
dispatch quality tracks the real error of the prediction.
"""

from repro.dispatch.entities import (
    DAY_MINUTES,
    Order,
    Driver,
    RideRequest,
    Vehicle,
    DispatchMetrics,
    OrderArrays,
    FleetArrays,
    online_mask,
)
from repro.dispatch.travel import TravelModel
from repro.dispatch.matching import (
    greedy_matching,
    optimal_matching,
    maximum_weight_matching,
    greedy_pairs_masked,
    min_cost_pairs,
    max_weight_pairs,
    edge_components,
    min_cost_pairs_blocked,
    max_weight_pairs_blocked,
    greedy_pairs_masked_blocked,
)
from repro.dispatch.spatial import GridBucketIndex
from repro.dispatch.demand import (
    PredictedDemandProvider,
    orders_from_events,
    order_arrays_from_events,
    requests_from_events,
)
from repro.dispatch.engine import (
    ArrayPolicy,
    VectorizedAssignmentEngine,
    supports_array_kernels,
    supports_sparse_matching,
)
from repro.dispatch.simulator import (
    AssignmentPolicy,
    TaskAssignmentSimulator,
    spawn_drivers,
    spawn_fleet,
)
from repro.dispatch.polar import POLARDispatcher
from repro.dispatch.ls import LSDispatcher
from repro.dispatch.daif import DAIFPlanner, spawn_vehicles
from repro.dispatch.scenarios import (
    DispatchScenario,
    ScenarioBundle,
    build_scenario_bundle,
    build_scenario_dataset,
    large_fleet_scenario,
    lifecycle_scenarios,
    lifecycle_stress_scenario,
    reference_scenario,
    run_scenario,
    scenario_grid,
    shift_windows,
    stress_scenarios,
)

__all__ = [
    "DAY_MINUTES",
    "online_mask",
    "Order",
    "Driver",
    "RideRequest",
    "Vehicle",
    "DispatchMetrics",
    "OrderArrays",
    "FleetArrays",
    "TravelModel",
    "greedy_matching",
    "optimal_matching",
    "maximum_weight_matching",
    "greedy_pairs_masked",
    "min_cost_pairs",
    "max_weight_pairs",
    "edge_components",
    "min_cost_pairs_blocked",
    "max_weight_pairs_blocked",
    "greedy_pairs_masked_blocked",
    "GridBucketIndex",
    "PredictedDemandProvider",
    "orders_from_events",
    "order_arrays_from_events",
    "requests_from_events",
    "ArrayPolicy",
    "VectorizedAssignmentEngine",
    "supports_array_kernels",
    "supports_sparse_matching",
    "AssignmentPolicy",
    "TaskAssignmentSimulator",
    "spawn_drivers",
    "spawn_fleet",
    "POLARDispatcher",
    "LSDispatcher",
    "DAIFPlanner",
    "spawn_vehicles",
    "DispatchScenario",
    "ScenarioBundle",
    "build_scenario_bundle",
    "build_scenario_dataset",
    "large_fleet_scenario",
    "lifecycle_scenarios",
    "lifecycle_stress_scenario",
    "reference_scenario",
    "run_scenario",
    "scenario_grid",
    "shift_windows",
    "stress_scenarios",
]
