"""Named dispatch scenarios: (city x policy x fleet x demand x seed) points.

A :class:`DispatchScenario` is a frozen, JSON-serialisable description of one
dispatch simulation — which synthetic city, which policy (POLAR or LS), how
many drivers, how much demand, and under which seed.  Scenarios are the unit
the suite runner in :mod:`repro.sweep.dispatch` fans out and caches: two equal
scenarios always produce byte-identical metrics, so a scenario is also a
cache key.

Determinism
-----------
Every random stream is derived from ``scenario.seed`` through
:func:`repro.utils.rng.seed_for` with a fixed label per purpose (dataset,
order jitter, driver spawn, simulator), so adding scenarios to a suite never
perturbs the streams of the others.  The simulation itself consumes its RNG
in the documented draw order of :mod:`repro.dispatch.engine`, which is why
cached scenario results replay byte-stably.

Scenario families
-----------------
* :func:`scenario_grid` — cross-product builder over cities, policies, fleet
  sizes, demand scales and seeds (Figures 6-8 style sweeps).
* :func:`stress_scenarios` — surge demand and small/large fleet variants of a
  base scenario.
* :func:`pathological_scenarios` — degenerate shapes graduated from the
  differential fuzzer (offset slot window, trailing empty slots,
  single-driver micro fleet, one-batch rider patience).
* :func:`reference_scenario` — the fixed 200-driver / 1-day scenario used by
  ``benchmarks/bench_dispatch_engine.py`` and the CI perf gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grid import GridLayout
from repro.core.interfaces import evaluation_targets
from repro.data.dataset import EventDataset
from repro.data.presets import CITY_PRESETS, city_preset
from repro.dispatch.demand import PredictedDemandProvider, order_arrays_from_events
from repro.dispatch.entities import DAY_MINUTES, DispatchMetrics, FleetArrays, OrderArrays
from repro.dispatch.ls import LSDispatcher
from repro.dispatch.polar import POLARDispatcher
from repro.dispatch.simulator import TaskAssignmentSimulator, spawn_fleet
from repro.dispatch.travel import TravelModel
from repro.prediction.oracle import PerfectPredictor
from repro.prediction.registry import available_models, create_seeded_model
from repro.utils.rng import default_rng, seed_for
from repro.utils.timer import wall_clock
from repro.utils.validation import ensure_perfect_square

#: Bump when the scenario semantics or serialised payload change, so stale
#: cache entries miss instead of replaying incompatible results.
#: Schema 2: fleet & order lifecycle — per-driver shift windows
#: (``fleet_profile``), rider-cancellation accounting and multi-day replay
#: (``test_days``) joined the scenario vocabulary.
SCENARIO_SCHEMA = 2

#: Policies the scenario suite can instantiate.
SCENARIO_POLICIES = ("polar", "ls")

#: Fleet lifecycle profiles a scenario can spawn (see :func:`shift_windows`).
FLEET_PROFILES = ("full_day", "two_shift", "skeleton")


def shift_windows(
    profile: str, count: int
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Per-driver recurring shift windows ``(online_from, online_until)``.

    Windows are minutes of day (see
    :func:`~repro.dispatch.entities.online_mask`), assigned deterministically
    by driver index so fleet spawning consumes no extra RNG draws and every
    engine sees the identical roster.

    * ``"full_day"`` — everyone online around the clock (the pre-lifecycle
      fixed fleet); returns ``(None, None)`` so the fleet keeps the default
      windows.
    * ``"two_shift"`` — even-indexed drivers work the day shift
      (05:00-17:30), odd-indexed the overnight shift (17:00-05:00, wrapping
      midnight); the 17:00-17:30 overlap is the evening-rush shift change.
    * ``"skeleton"`` — every fourth driver is online around the clock, the
      rest only 06:00-22:00: overnight the city runs on a quarter of the
      fleet.
    """
    if profile not in FLEET_PROFILES:
        raise ValueError(f"fleet_profile must be one of {FLEET_PROFILES}")
    if profile == "full_day":
        return None, None
    index = np.arange(count)
    if profile == "two_shift":
        day_shift = index % 2 == 0
        online_from = np.where(day_shift, 300.0, 1020.0)
        online_until = np.where(day_shift, 1050.0, 300.0)
        return online_from, online_until
    skeleton = index % 4 == 0
    online_from = np.where(skeleton, 0.0, 360.0)
    online_until = np.where(skeleton, DAY_MINUTES, 1320.0)
    return online_from, online_until


@dataclass(frozen=True)
class DispatchScenario:
    """One reproducible dispatch simulation configuration.

    Attributes
    ----------
    city:
        City preset name (see :data:`repro.data.presets.CITY_PRESETS`).
    policy:
        ``"polar"`` or ``"ls"``.
    fleet_size:
        Number of drivers.
    demand_scale:
        Multiplier on the scenario's base city volume ``scale`` — ``2.0``
        doubles the simulated order stream (surge), ``0.5`` halves it.
    seed:
        Base seed every derived stream hangs off.
    scale, num_days:
        Synthetic dataset parameters (the test day provides the orders).
    slots:
        Simulated slots of the test day; ``None`` replays the whole day.
    mgrid_side:
        MGrid resolution of the predicted-demand guidance.
    hgrid_budget:
        HGrid budget the guidance is spread over.
    guidance:
        ``"oracle"`` feeds the dispatcher the realised demand (the paper's
        "real order data" series); ``"none"`` disables repositioning; any
        registered prediction model name (``"mlp"``, ``"deepst"``,
        ``"dmvst_net"``, ``"historical_average"``, ...) trains that
        predictor on the scenario's history and feeds its *predicted*
        demand to the dispatcher — the paper's actual serving pipeline, so
        prediction quality is exercised at fleet scale.
    matching:
        POLAR's assignment solver: ``"optimal"`` (Hungarian) or ``"greedy"``
        (the city-scale configuration).  Ignored by LS, which always solves
        the maximum-weight matching.
    batch_minutes, max_wait_minutes:
        Matching batch length and rider patience: an order waiting longer
        than ``max_wait_minutes`` is cancelled by its rider (counted in
        ``DispatchMetrics.cancelled_orders``).
    test_days:
        Number of consecutive test days replayed.  Fleet state — positions,
        ``available_at``, per-driver statistics — carries across the day
        boundaries, and shift windows recur daily.
    fleet_profile:
        Driver shift roster (see :func:`shift_windows`): ``"full_day"``
        (static fleet, the default), ``"two_shift"`` (day/overnight shifts
        with an evening-rush change-over) or ``"skeleton"`` (overnight
        skeleton fleet).
    name:
        Optional label used in reports; defaults to a structural name.
    """

    city: str
    policy: str = "polar"
    fleet_size: int = 200
    demand_scale: float = 1.0
    seed: int = 7
    scale: float = 0.01
    num_days: int = 8
    slots: Optional[Tuple[int, ...]] = None
    mgrid_side: int = 8
    hgrid_budget: int = 256
    guidance: str = "oracle"
    matching: str = "optimal"
    batch_minutes: float = 2.0
    max_wait_minutes: float = 10.0
    test_days: int = 1
    fleet_profile: str = "full_day"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.city not in CITY_PRESETS:
            raise ValueError(
                f"unknown city preset {self.city!r}; available: {sorted(CITY_PRESETS)}"
            )
        if self.policy not in SCENARIO_POLICIES:
            raise ValueError(f"policy must be one of {SCENARIO_POLICIES}")
        if self.fleet_size <= 0:
            raise ValueError("fleet_size must be positive")
        if self.demand_scale <= 0:
            raise ValueError("demand_scale must be positive")
        if self.guidance not in ("oracle", "none") and self.guidance not in available_models():
            raise ValueError(
                "guidance must be 'oracle', 'none' or a registered prediction "
                f"model name (available: {available_models()})"
            )
        if self.matching not in ("optimal", "greedy"):
            raise ValueError("matching must be 'optimal' or 'greedy'")
        if self.test_days < 1:
            raise ValueError("test_days must be at least 1")
        if self.num_days < self.test_days + 3:
            # The chronological split needs >= 1 train + 2 val days ahead of
            # the test window; fail here with scenario context instead of
            # deep inside dataset generation.
            raise ValueError(
                f"num_days={self.num_days} too small for test_days="
                f"{self.test_days} (need at least test_days + 3)"
            )
        if self.fleet_profile not in FLEET_PROFILES:
            raise ValueError(f"fleet_profile must be one of {FLEET_PROFILES}")
        ensure_perfect_square(self.hgrid_budget, "hgrid_budget")

    @property
    def label(self) -> str:
        """Human-readable scenario label."""
        if self.name:
            return self.name
        return (
            f"{self.city}/{self.policy}/fleet{self.fleet_size}"
            f"/demand{self.demand_scale:g}/seed{self.seed}"
        )

    @property
    def dataset_signature(self) -> Tuple[str, float, int, int, int]:
        """Key identifying the synthetic dataset this scenario runs against.

        ``test_days`` is part of the key because it changes the dataset's
        chronological split (which days are test days), even though the
        generated events are identical.
        """
        return (
            self.city,
            self.effective_scale,
            self.num_days,
            self.test_days,
            self.dataset_seed,
        )

    @property
    def effective_scale(self) -> float:
        """City volume scale after applying ``demand_scale``."""
        return self.scale * self.demand_scale

    @property
    def dataset_seed(self) -> int:
        return seed_for(f"dispatch-scenario/{self.city}/dataset", self.seed)

    @property
    def guidance_signature(self) -> Tuple:
        """Key identifying the demand-guidance provider this scenario needs.

        Scenarios that differ only in policy, fleet size or matching share
        one provider (and therefore one predictor training when guidance is
        a model name); everything the provider's content depends on is in
        the key.
        """
        return (
            self.dataset_signature,
            self.guidance,
            self.seed,
            self.mgrid_side,
            self.hgrid_budget,
        )

    def cache_payload(self) -> Dict[str, Any]:
        """JSON-serialisable parameter mapping that keys the result cache.

        ``name`` is a display label, not an input, so it is excluded — equal
        configurations share a cache entry regardless of how they are named.
        """
        return {
            "schema": SCENARIO_SCHEMA,
            "city": self.city,
            "policy": self.policy,
            "fleet_size": self.fleet_size,
            "demand_scale": self.demand_scale,
            "seed": self.seed,
            "scale": self.scale,
            "num_days": self.num_days,
            "slots": list(self.slots) if self.slots is not None else None,
            "mgrid_side": self.mgrid_side,
            "hgrid_budget": self.hgrid_budget,
            "guidance": self.guidance,
            "matching": self.matching,
            "batch_minutes": self.batch_minutes,
            "max_wait_minutes": self.max_wait_minutes,
            "test_days": self.test_days,
            "fleet_profile": self.fleet_profile,
        }

    def make_policy(self):
        """Fresh policy instance for one simulation run."""
        if self.policy == "polar":
            return POLARDispatcher(use_optimal_matching=self.matching == "optimal")
        return LSDispatcher()


def scenario_from_payload(payload: Dict[str, Any]) -> DispatchScenario:
    """Rebuild a :class:`DispatchScenario` from its :meth:`cache_payload`.

    The inverse of :meth:`DispatchScenario.cache_payload`, used by the
    service ingest log (:mod:`repro.service.ingest`) to make recorded runs
    self-describing: the log header embeds the payload, and replaying it
    offline rebuilds the exact scenario.  Schema mismatches fail loudly
    instead of replaying under different semantics.
    """
    schema = payload.get("schema")
    if schema != SCENARIO_SCHEMA:
        raise ValueError(
            f"unsupported scenario schema {schema!r} (expected {SCENARIO_SCHEMA})"
        )
    slots = payload.get("slots")
    return DispatchScenario(
        city=payload["city"],
        policy=payload["policy"],
        fleet_size=int(payload["fleet_size"]),
        demand_scale=float(payload["demand_scale"]),
        seed=int(payload["seed"]),
        scale=float(payload["scale"]),
        num_days=int(payload["num_days"]),
        slots=tuple(int(s) for s in slots) if slots is not None else None,
        mgrid_side=int(payload["mgrid_side"]),
        hgrid_budget=int(payload["hgrid_budget"]),
        guidance=payload["guidance"],
        matching=payload["matching"],
        batch_minutes=float(payload["batch_minutes"]),
        max_wait_minutes=float(payload["max_wait_minutes"]),
        test_days=int(payload["test_days"]),
        fleet_profile=payload["fleet_profile"],
        name=payload.get("name"),
    )


@dataclass
class ScenarioBundle:
    """Materialised inputs of one scenario, ready to simulate.

    Building the bundle (dataset generation, oracle predictions) is the
    expensive part; running the simulation on it is cheap, which is why the
    suite runner shares bundles between engines and the benchmark replays the
    same bundle under both engines.

    ``orders`` is the first test day's stream (the single-day view every
    pre-lifecycle caller used); ``orders_per_day`` holds one stream per
    replayed test day, and ``minutes_per_slot`` is the dataset's exact slot
    length, passed to the simulator so offset slot windows are sized
    correctly instead of inferred.
    """

    scenario: DispatchScenario
    orders: OrderArrays
    travel: TravelModel
    provider: Optional[PredictedDemandProvider]
    slots: Tuple[int, ...]
    orders_per_day: Tuple[OrderArrays, ...] = ()
    minutes_per_slot: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.orders_per_day:
            self.orders_per_day = (self.orders,)

    @property
    def total_order_count(self) -> int:
        """Orders across every replayed day (``len(orders)`` is day 0 only)."""
        return sum(len(day_orders) for day_orders in self.orders_per_day)

    def spawn_fleet(self) -> FleetArrays:
        """Fresh driver state drawn from the scenario's spawn stream.

        The stream label is structural (city only), not the display name, so
        equally configured scenarios draw identical fleets — the property the
        result cache keys on — and POLAR/LS compare on the same fleet.  The
        scenario's ``fleet_profile`` assigns shift windows deterministically
        by driver index, consuming no RNG draws.
        """
        rng = default_rng(
            seed_for(f"dispatch-scenario/{self.scenario.city}/fleet", self.scenario.seed)
        )
        initial = None
        if self.provider is not None and self.provider.has_slot(0, self.slots[0]):
            initial = self.provider.hgrid_demand(0, self.slots[0])
        fleet = spawn_fleet(self.scenario.fleet_size, rng, demand_grid=initial)
        online_from, online_until = shift_windows(
            self.scenario.fleet_profile, self.scenario.fleet_size
        )
        if online_from is not None:
            fleet.online_from = online_from
            fleet.online_until = online_until
        return fleet

    def simulator(
        self, engine: str = "vector", sparse: str = "auto"
    ) -> TaskAssignmentSimulator:
        """A simulator for this bundle using the requested engine.

        ``sparse`` selects the vectorized engine's matching pipeline
        (``"auto"``/``"always"``/``"never"``); every mode produces identical
        metrics, so it is an execution detail, not part of the scenario (or
        its cache key).
        """
        return TaskAssignmentSimulator(
            policy=self.scenario.make_policy(),
            travel=self.travel,
            demand=self.provider,
            batch_minutes=self.scenario.batch_minutes,
            seed=seed_for(
                f"dispatch-scenario/{self.scenario.city}/{self.scenario.policy}/sim",
                self.scenario.seed,
            ),
            engine=engine,
            sparse=sparse,
            minutes_per_slot=self.minutes_per_slot,
        )

    def run(self, engine: str = "vector", sparse: str = "auto") -> DispatchMetrics:
        """Spawn a fresh fleet and simulate once (all replayed days)."""
        fleet = self.spawn_fleet()
        multi_day = len(self.orders_per_day) > 1
        if engine == "scalar":
            # The scalar oracle consumes entity objects.
            drivers = [
                _driver_from_arrays(fleet, i) for i in range(len(fleet))
            ]
            if multi_day:
                orders = [day_orders.to_orders() for day_orders in self.orders_per_day]
            else:
                orders = self.orders.to_orders()
            return self.simulator(engine).run(orders, drivers, day=0, slots=self.slots)
        orders = list(self.orders_per_day) if multi_day else self.orders
        return self.simulator(engine, sparse=sparse).run(
            orders, fleet, day=0, slots=self.slots
        )


def _driver_from_arrays(fleet: FleetArrays, index: int):
    from repro.dispatch.entities import Driver

    return Driver(
        driver_id=int(fleet.driver_id[index]),
        x=float(fleet.x[index]),
        y=float(fleet.y[index]),
        available_at=float(fleet.available_at[index]),
        served_orders=int(fleet.served_orders[index]),
        earned_revenue=float(fleet.earned_revenue[index]),
        online_from=float(fleet.online_from[index]),
        online_until=float(fleet.online_until[index]),
    )


def build_scenario_dataset(scenario: DispatchScenario) -> EventDataset:
    """Generate the scenario's synthetic dataset (the ``dataset_signature`` key)."""
    return EventDataset.from_city(
        city_preset(scenario.city, scale=scenario.effective_scale),
        num_days=scenario.num_days,
        test_days=scenario.test_days,
        seed=scenario.dataset_seed,
    )


def build_scenario_bundle(
    scenario: DispatchScenario,
    dataset: Optional[EventDataset] = None,
    provider_cache: Optional[Dict[Tuple, PredictedDemandProvider]] = None,
) -> ScenarioBundle:
    """Generate (or reuse) the dataset and derive the scenario's inputs.

    ``dataset`` lets callers (the suite runner, the benchmark) share one
    generated dataset across scenarios with equal ``dataset_signature``;
    ``provider_cache`` likewise shares the demand-guidance provider across
    scenarios with equal ``guidance_signature``, so a suite sweeping
    policies/fleet sizes over predictor guidance trains each predictor once
    instead of once per scenario.
    """
    if dataset is None:
        dataset = build_scenario_dataset(scenario)
    elif len(dataset.split.test_days) < scenario.test_days:
        # A shorter test split would silently replay empty days (both
        # engines skip them), under-reporting the scenario; fail loudly.
        raise ValueError(
            f"dataset has {len(dataset.split.test_days)} test day(s) but the "
            f"scenario replays test_days={scenario.test_days}; build it with "
            "build_scenario_dataset(scenario)"
        )
    travel = TravelModel.for_city(dataset.city)
    test_events = dataset.test_events()
    # One order stream per replayed test day.  Day 0 keeps the historical
    # stream label so pre-lifecycle scenario results replay unchanged; later
    # days hang off their own structural labels, so extending a scenario to
    # more days never perturbs the earlier days' draws.
    orders_per_day = []
    for day in range(scenario.test_days):
        label = f"dispatch-scenario/{scenario.city}/orders"
        if day > 0:
            label = f"{label}/day{day}"
        orders_per_day.append(
            order_arrays_from_events(
                test_events,
                day=day,
                slots=scenario.slots,
                max_wait_minutes=scenario.max_wait_minutes,
                seed=seed_for(label, scenario.seed),
            )
        )
    orders = orders_per_day[0]
    if scenario.slots is not None:
        slots = tuple(int(s) for s in scenario.slots)
    else:
        slots = tuple(
            sorted({int(s) for day_orders in orders_per_day for s in day_orders.slot})
        )
    provider = None
    if scenario.guidance != "none" and any(len(o) for o in orders_per_day):
        key = scenario.guidance_signature
        if provider_cache is not None and key in provider_cache:
            provider = provider_cache[key]
        else:
            provider = _guidance_provider(dataset, scenario)
            if provider_cache is not None:
                provider_cache[key] = provider
    return ScenarioBundle(
        scenario=scenario,
        orders=orders,
        travel=travel,
        provider=provider,
        slots=slots,
        orders_per_day=tuple(orders_per_day),
        minutes_per_slot=float(dataset.events.slots.minutes_per_slot),
    )


def _guidance_predictor(scenario: DispatchScenario):
    """Instantiate the scenario's guidance predictor (oracle or registry model)."""
    if scenario.guidance == "oracle":
        return PerfectPredictor()
    return create_seeded_model(
        scenario.guidance,
        seed=seed_for(
            f"dispatch-scenario/{scenario.city}/guidance/{scenario.guidance}",
            scenario.seed,
        ),
    )


def _guidance_provider(
    dataset: EventDataset, scenario: DispatchScenario
) -> PredictedDemandProvider:
    """Demand guidance at the scenario's MGrid resolution.

    ``"oracle"`` serves the realised demand; a model name trains that
    predictor on the scenario's train/validation days and serves its
    test-day predictions — so dispatch metrics directly reflect prediction
    quality.  Training draws from a structurally labelled stream, keeping
    scenario results deterministic (and therefore cacheable byte-stably).
    """
    side = scenario.mgrid_side
    layout = GridLayout.for_ogss(side * side, scenario.hgrid_budget)
    test_days = list(dataset.split.test_days)
    targets = evaluation_targets(dataset, test_days)
    predictor = _guidance_predictor(scenario)
    predictor.fit(dataset, side)
    predictions = predictor.predict(dataset, side, targets)
    # The simulator addresses test-day slots relative to replay day 0: the
    # d-th test day becomes provider day d (a multi-day replay queries days
    # 0..test_days-1 in order).
    first = int(test_days[0])
    rebased = [(int(day) - first, slot) for (day, slot) in targets]
    return PredictedDemandProvider(layout, predictions, rebased)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario simulation."""

    scenario: DispatchScenario
    metrics: DispatchMetrics
    total_orders: int
    seconds: float
    engine: str


def run_scenario(
    scenario: DispatchScenario,
    engine: str = "vector",
    dataset: Optional[EventDataset] = None,
    sparse: str = "auto",
) -> ScenarioResult:
    """Build the scenario's inputs and simulate it once."""
    bundle = build_scenario_bundle(scenario, dataset=dataset)
    start = wall_clock()
    metrics = bundle.run(engine=engine, sparse=sparse)
    return ScenarioResult(
        scenario=scenario,
        metrics=metrics,
        total_orders=bundle.total_order_count,
        seconds=wall_clock() - start,
        engine=engine,
    )


def scenario_grid(
    cities: Sequence[str],
    policies: Sequence[str] = ("polar", "ls"),
    fleet_sizes: Sequence[int] = (200,),
    demand_scales: Sequence[float] = (1.0,),
    seeds: Sequence[int] = (7,),
    **common: Any,
) -> List[DispatchScenario]:
    """Cross-product scenario builder over the suite's five axes.

    ``common`` is forwarded to every scenario (e.g. ``scale``, ``slots``,
    ``guidance``).
    """
    if not cities:
        raise ValueError("at least one city is required")
    if not policies:
        raise ValueError("at least one policy is required")
    if not fleet_sizes or not demand_scales or not seeds:
        raise ValueError("fleet_sizes, demand_scales and seeds must be non-empty")
    return [
        DispatchScenario(
            city=city,
            policy=policy,
            fleet_size=int(fleet),
            demand_scale=float(demand),
            seed=int(seed),
            **common,
        )
        for city in cities
        for policy in policies
        for fleet in fleet_sizes
        for demand in demand_scales
        for seed in seeds
    ]


def stress_scenarios(base: DispatchScenario) -> List[DispatchScenario]:
    """Stress variants of ``base``: surge demand, small fleet, large fleet."""
    return [
        replace(base, name=f"{base.label}/surge", demand_scale=base.demand_scale * 2.0),
        replace(
            base,
            name=f"{base.label}/small-fleet",
            fleet_size=max(1, base.fleet_size // 2),
        ),
        replace(base, name=f"{base.label}/large-fleet", fleet_size=base.fleet_size * 2),
    ]


def lifecycle_scenarios(base: DispatchScenario) -> List[DispatchScenario]:
    """Fleet/order lifecycle variants of ``base``.

    The churn counterpart of :func:`stress_scenarios`:

    * ``shift-change`` — the two-shift roster (day and overnight shifts with
      an evening-rush change-over), replayed on the base demand;
    * ``overnight-skeleton`` — the skeleton roster where three quarters of
      the fleet go offline overnight;
    * ``cancel-surge`` — doubled demand under an impatient-rider patience
      (the base patience capped at 3 minutes), a high-cancellation surge day;
    * ``two-day-churn`` — the two-shift roster replayed over at least two
      consecutive test days, carrying fleet state (positions,
      ``available_at``, earnings) across midnight.

    Each variant overrides the base knob it stresses (roster, patience,
    replay length); the base's other parameters are kept, so e.g. a
    ``test_days=3`` base keeps its 3-day replay in the churn variant.
    """
    return [
        replace(base, name=f"{base.label}/shift-change", fleet_profile="two_shift"),
        replace(
            base, name=f"{base.label}/overnight-skeleton", fleet_profile="skeleton"
        ),
        replace(
            base,
            name=f"{base.label}/cancel-surge",
            demand_scale=base.demand_scale * 2.0,
            max_wait_minutes=min(base.max_wait_minutes, 3.0),
        ),
        replace(
            base,
            name=f"{base.label}/two-day-churn",
            fleet_profile="two_shift",
            test_days=max(base.test_days, 2),
        ),
    ]


def pathological_scenarios(base: DispatchScenario) -> List[DispatchScenario]:
    """Pathological stress variants of ``base``, graduated from the fuzzer.

    Each variant pins one degenerate shape the differential fuzzer
    (:mod:`repro.fuzz`) found worth keeping under permanent replay because
    the engines' edge-case handling diverged there historically:

    * ``offset-window`` — an evening slot window that starts nowhere near
      slot 0 (the ``infer_minutes_per_slot`` bug class: slot lengths must
      come from the dataset, not be inferred from arrival/slot ratios);
    * ``empty-tail`` — the base window extended with the last slots of the
      day, which at suite scales carry few or no orders, so every engine
      must advance time and reposition through order-free slots;
    * ``micro-fleet`` — a single driver serving the whole window, where one
      off-by-one in idle masking or availability carry-over flips every
      subsequent match;
    * ``one-batch-patience`` — rider patience equal to one matching batch,
      so every unmatched order sits exactly on the cancellation boundary.
    """
    window = base.slots if base.slots is not None else (16, 17)
    tail = tuple(sorted(set(window) | {46, 47}))
    return [
        replace(base, name=f"{base.label}/offset-window", slots=(40, 41, 42, 43)),
        replace(base, name=f"{base.label}/empty-tail", slots=tail),
        replace(base, name=f"{base.label}/micro-fleet", fleet_size=1),
        replace(
            base,
            name=f"{base.label}/one-batch-patience",
            max_wait_minutes=base.batch_minutes,
        ),
    ]


def lifecycle_stress_scenario(
    policy: str = "polar", matching: str = "greedy"
) -> DispatchScenario:
    """Pinned lifecycle stress point for the benchmark and the CI perf gate.

    A 2000-driver two-shift fleet replays two consecutive surge test days
    under a tight 6-minute rider patience: every batch exercises the shift
    mask, the cancellation accounting and the cross-midnight carry-over of
    driver state, at a fleet scale where the vectorized engine's advantage
    over the scalar oracle is measurable.  The perf gate asserts bit-equal
    metrics between both engines on this scenario and a speedup floor; keep
    it stable or regenerate ``benchmarks/baseline_dispatch.json``.
    """
    return DispatchScenario(
        city="nyc_like",
        policy=policy,
        fleet_size=2000,
        demand_scale=6.0,
        seed=7,
        scale=0.01,
        num_days=8,
        test_days=2,
        fleet_profile="two_shift",
        max_wait_minutes=6.0,
        matching=matching,
        name=f"stress-lifecycle2000x2day-{policy}-{matching}",
    )


def predicted_demand_scenarios(
    base: DispatchScenario,
    models: Sequence[str] = ("historical_average", "mlp", "deepst", "dmvst_net"),
    surge: float = 2.0,
) -> List[DispatchScenario]:
    """Predictor-driven surge variants of ``base``: one per demand model.

    The predictor-guided counterpart of :func:`stress_scenarios`: each
    variant replays the surge day with the dispatcher repositioning on the
    named model's *predicted* demand instead of the oracle's realised
    demand, so a whole suite run compares how prediction quality translates
    into fleet-scale dispatch metrics (Figures 6-8's "predicted vs real
    order data" axis).
    """
    if surge <= 0:
        raise ValueError("surge must be positive")
    return [
        replace(
            base,
            name=f"{base.label}/surge-{model}",
            demand_scale=base.demand_scale * surge,
            guidance=model,
        )
        for model in models
    ]


def large_fleet_scenario(
    policy: str = "polar",
    matching: str = "optimal",
    fleet_size: int = 40000,
    demand_scale: float = 12.0,
    max_wait_minutes: float = 4.0,
) -> DispatchScenario:
    """City-day stress point where dense candidate matrices blow past cache.

    40k drivers (a realistic metropolitan fleet) over a surge NYC-like day
    with a tight 4-minute pickup SLA: every batch's dense
    ``(pending x idle)`` matrix holds over a million mostly-infeasible pairs
    — the tight wait tolerance caps the feasible pickup radius at ~1.6 km —
    which is exactly the regime the sparse matching pipeline targets.
    ``benchmarks/bench_dispatch_engine.py`` times the sparse engine against
    the dense vector engine on this scenario and the CI perf gate enforces
    both the speedup floor and sparse/dense metric equality (the default
    POLAR/Hungarian configuration is verified tie-free, so the equality is
    exact; see the tie caveat in :mod:`repro.dispatch.matching`).
    """
    return DispatchScenario(
        city="nyc_like",
        policy=policy,
        fleet_size=fleet_size,
        demand_scale=demand_scale,
        seed=7,
        scale=0.01,
        num_days=8,
        slots=None,
        matching=matching,
        max_wait_minutes=max_wait_minutes,
        name=f"stress-largefleet{fleet_size}x{demand_scale:g}-{policy}-{matching}",
    )


def reference_scenario(policy: str = "polar", matching: str = "greedy") -> DispatchScenario:
    """The fixed benchmark scenario: 200 drivers over one full NYC-like day.

    The default uses POLAR's greedy (city-scale) matching — the configuration
    where the seed's per-object loop is most scalar-bound — and is the profile
    ``benchmarks/bench_dispatch_engine.py`` times and the CI perf gate
    compares against ``benchmarks/baseline_dispatch.json``; keep it stable,
    or regenerate the baseline when changing it.
    """
    return DispatchScenario(
        city="nyc_like",
        policy=policy,
        fleet_size=200,
        demand_scale=1.0,
        seed=7,
        scale=0.01,
        num_days=8,
        slots=None,
        matching=matching,
        name=f"reference-200x1day-{policy}-{matching}",
    )
