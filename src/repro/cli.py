"""Command-line interface for the GridTuner reproduction.

Three subcommands cover the common workflows:

``tune``
    Generate (or reuse) a synthetic city, tune the grid size for a prediction
    model and print the selected ``n`` plus the error decomposition.

``curve``
    Print the upper-bound curve (model error, expression error, total) over a
    range of candidate grid sizes.

``experiment``
    Run one of the named paper experiments (``fig3``, ``fig4`` ... ``table4``)
    at a chosen profile and print the reproduced series.

``sweep``
    Fan OGSS searches across (city preset x model x slot) combinations in
    parallel, with a persistent on-disk result cache (rerunning the same
    sweep replays it from the cache).

``dispatch``
    Fan dispatch simulations across (city x policy x fleet size x demand
    scale x seed) scenario points through the vectorized engine, with the
    same persistent result cache (reruns replay byte-stably).

``predict``
    Fan predictor trainings across (city x model x resolution x seed)
    scenario points through the prediction engine, with the same persistent
    result cache (reruns replay byte-stably).

Examples
--------
::

    python -m repro tune --city nyc_like --model deepst --budget 256 --algorithm iterative
    python -m repro curve --city xian_like --model historical_average --sides 2 4 8 16
    python -m repro experiment fig3 --profile tiny
    python -m repro sweep --preset nyc,chengdu,xian --slots 16 17 --workers 4
    python -m repro dispatch --preset nyc --fleet-sizes 100 200 --demand-scales 1 2
    python -m repro predict --preset nyc --models mlp,deepst --resolutions 4 8
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.tuner import GridTuner
from repro.data.dataset import EventDataset
from repro.data.presets import CITY_PRESETS, city_preset
from repro.experiments.case_study import run_task_assignment, table3_promotion
from repro.experiments.context import CITIES, MODELS, ExperimentContext
from repro.experiments.error_curves import (
    expression_error_curve,
    model_error_curve,
    real_error_curve,
)
from repro.experiments.dispatch_suite import run_dispatch_suite
from repro.experiments.prediction_suite import run_prediction_suite
from repro.experiments.multi_city import resolve_city, run_city_sweep
from repro.experiments.reporting import format_table
from repro.experiments.search_eval import evaluate_search_algorithms
from repro.prediction.registry import available_models, model_factory

#: Experiments runnable through ``python -m repro experiment <name>``.
EXPERIMENT_NAMES = ("fig3", "fig4", "fig5", "fig6", "table3", "table4")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GridTuner: optimal grid size selection for spatiotemporal prediction models",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="tune the grid size for one city/model")
    _add_dataset_arguments(tune)
    tune.add_argument(
        "--algorithm",
        choices=("brute_force", "ternary", "iterative"),
        default="iterative",
        help="OGSS search algorithm (default: iterative)",
    )

    curve = subparsers.add_parser("curve", help="print the upper-bound error curve")
    _add_dataset_arguments(curve)
    curve.add_argument(
        "--sides",
        type=int,
        nargs="+",
        default=None,
        help="candidate sqrt(n) values (default: divisors of sqrt(budget))",
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a named paper experiment"
    )
    experiment.add_argument("name", choices=EXPERIMENT_NAMES)
    experiment.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile (default: tiny)",
    )
    experiment.add_argument(
        "--city", choices=CITIES, default="nyc_like", help="city for per-city experiments"
    )

    sweep = subparsers.add_parser(
        "sweep", help="parallel OGSS sweep across city presets with result caching"
    )
    sweep.add_argument(
        "--preset",
        default="nyc,chengdu,xian",
        help="comma-separated city presets; short aliases allowed (default: nyc,chengdu,xian)",
    )
    sweep.add_argument(
        "--models",
        default="historical_average",
        help="comma-separated prediction models (default: historical_average)",
    )
    sweep.add_argument(
        "--slots",
        type=int,
        nargs="+",
        default=[16],
        help="time slots to tune (default: 16, the 08:00-08:30 peak)",
    )
    sweep.add_argument(
        "--algorithm",
        choices=("brute_force", "ternary", "iterative"),
        default="iterative",
        help="OGSS search algorithm (default: iterative)",
    )
    sweep.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset/budget (default: tiny)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads (default: min(tasks, CPU count))",
    )
    sweep.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )

    dispatch = subparsers.add_parser(
        "dispatch",
        help="parallel dispatch scenario suite (city x policy x fleet x demand x seed)",
    )
    dispatch.add_argument(
        "--preset",
        default="nyc",
        help="comma-separated city presets; short aliases allowed (default: nyc)",
    )
    dispatch.add_argument(
        "--policies",
        default="polar,ls",
        help="comma-separated dispatch policies (default: polar,ls)",
    )
    dispatch.add_argument(
        "--fleet-sizes",
        type=int,
        nargs="+",
        default=[100, 200],
        help="driver counts to sweep (default: 100 200)",
    )
    dispatch.add_argument(
        "--demand-scales",
        type=float,
        nargs="+",
        default=[1.0, 2.0],
        help="demand multipliers to sweep; 2.0 is a surge day (default: 1 2)",
    )
    dispatch.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7],
        help="random seeds to sweep (default: 7)",
    )
    dispatch.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset/slots (default: tiny)",
    )
    dispatch.add_argument(
        "--engine",
        choices=("vector", "scalar"),
        default="vector",
        help="simulation engine (default: vector; scalar is the reference oracle)",
    )
    dispatch.add_argument(
        "--matching",
        choices=("optimal", "greedy"),
        default="optimal",
        help="POLAR assignment solver (default: optimal)",
    )
    dispatch.add_argument(
        "--sparse",
        choices=("auto", "always", "never"),
        default="auto",
        help=(
            "vector-engine matching pipeline: grid-bucketed sparse matching "
            "on large batches (auto, default), forced (always) or the dense "
            "candidate matrix (never); metrics are identical in every mode"
        ),
    )
    dispatch.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "worker pool backend; 'process' sidesteps the GIL on "
            "matching-heavy scenario suites (default: thread)"
        ),
    )
    dispatch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads/processes (default: min(scenarios, CPU count))",
    )
    dispatch.add_argument(
        "--guidance",
        default="oracle",
        help=(
            "repositioning demand source: 'oracle' (realised demand), 'none' "
            "(no repositioning) or any registered prediction model name "
            "(e.g. mlp, deepst, dmvst_net, historical_average), which trains "
            "that predictor on the scenario's history and feeds its "
            "predictions to the dispatcher (default: oracle)"
        ),
    )
    dispatch.add_argument(
        "--scenario",
        choices=("grid", "lifecycle"),
        default="grid",
        help=(
            "scenario family: the plain cross-product grid (default) or its "
            "lifecycle/churn variants — rush-hour shift change, overnight "
            "skeleton fleet, high-cancellation surge and a 2-day carry-over "
            "replay per grid point; each variant overrides the one knob it "
            "stresses (--fleet-profile, --max-wait capped at 3, --test-days "
            "raised to >= 2 for the churn variant)"
        ),
    )
    dispatch.add_argument(
        "--test-days",
        type=int,
        default=1,
        help=(
            "consecutive test days replayed per scenario; fleet state "
            "(positions, availability, earnings) carries across the day "
            "boundaries (default: 1)"
        ),
    )
    dispatch.add_argument(
        "--fleet-profile",
        choices=("full_day", "two_shift", "skeleton"),
        default="full_day",
        help=(
            "driver shift roster: full_day (static fleet, default), "
            "two_shift (day/overnight shifts with an evening-rush change-"
            "over) or skeleton (overnight skeleton fleet)"
        ),
    )
    dispatch.add_argument(
        "--max-wait",
        type=float,
        default=10.0,
        help=(
            "rider patience in minutes; orders waiting longer are cancelled "
            "and counted in the cancelled metric (default: 10)"
        ),
    )
    dispatch.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )

    predict = subparsers.add_parser(
        "predict",
        help="parallel predictor-training suite (city x model x resolution x seed)",
    )
    predict.add_argument(
        "--preset",
        default="nyc",
        help="comma-separated city presets; short aliases allowed (default: nyc)",
    )
    predict.add_argument(
        "--models",
        default="historical_average,mlp",
        help=(
            "comma-separated prediction models "
            "(default: historical_average,mlp)"
        ),
    )
    predict.add_argument(
        "--resolutions",
        type=int,
        nargs="+",
        default=[8],
        help="MGrid resolutions sqrt(n) to train at (default: 8)",
    )
    predict.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7],
        help="random seeds to sweep (default: 7)",
    )
    predict.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset size (default: tiny)",
    )
    predict.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="override training epochs for the neural models",
    )
    predict.add_argument(
        "--max-train-samples",
        type=int,
        default=None,
        help="override the training-sample cap for the neural models",
    )
    predict.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker pool backend (default: thread)",
    )
    predict.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads/processes (default: min(scenarios, CPU count))",
    )
    predict.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", choices=sorted(CITY_PRESETS), default="nyc_like")
    parser.add_argument(
        "--model",
        choices=available_models(),
        default="historical_average",
        help="prediction model (default: historical_average)",
    )
    parser.add_argument("--scale", type=float, default=0.01, help="city volume scale")
    parser.add_argument("--days", type=int, default=21, help="days of history to generate")
    parser.add_argument("--budget", type=int, default=256, help="HGrid budget N (perfect square)")
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _build_tuner(args: argparse.Namespace) -> GridTuner:
    dataset = EventDataset.from_city(
        city_preset(args.city, scale=args.scale), num_days=args.days, seed=args.seed
    )
    return GridTuner(dataset, model_factory(args.model), hgrid_budget=args.budget)


def _command_tune(args: argparse.Namespace) -> int:
    tuner = _build_tuner(args)
    result = tuner.select(args.algorithm, min_side=2)
    report = tuner.evaluate_real_error(result.optimal_side)
    print(f"city: {args.city}   model: {args.model}   N = {args.budget}")
    print(
        f"selected n = {result.optimal_side}x{result.optimal_side} "
        f"({result.optimal_n} MGrids) via {args.algorithm} "
        f"after {result.search.evaluations} evaluations"
    )
    rows = [
        ["model error", round(report.model_error, 2)],
        ["expression error", round(report.expression_error, 2)],
        ["upper bound", round(report.upper_bound, 2)],
        ["real error", round(report.real_error, 2)],
        ["Theorem II.1 holds", report.satisfies_upper_bound()],
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _command_curve(args: argparse.Namespace) -> int:
    tuner = _build_tuner(args)
    curve = tuner.error_curve(args.sides)
    rows = [
        [
            f"{side}x{side}",
            round(result.model_error, 2),
            round(result.expression_error, 2),
            round(result.total, 2),
        ]
        for side, result in curve.items()
    ]
    print(
        format_table(
            ["grid", "model error", "expression error", "upper bound"],
            rows,
            title=f"Upper-bound curve ({args.city}, {args.model}, N={args.budget})",
        )
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext.from_profile(args.profile)
    sides = list(context.config.mgrid_sides)
    if args.name == "fig3":
        curves = expression_error_curve(context, CITIES, sides)
        rows = [
            [city, point.num_mgrids, round(point.value, 2)]
            for city, points in curves.items()
            for point in points
        ]
        print(format_table(["city", "n", "expression error"], rows, title="Figure 3"))
    elif args.name == "fig4":
        curves = model_error_curve(context, args.city, MODELS, sides, surrogate=True)
        rows = [
            [model, point.num_mgrids, round(point.value, 2)]
            for model, points in curves.items()
            for point in points
        ]
        print(format_table(["model", "n", "model error"], rows, title="Figure 4"))
    elif args.name == "fig5":
        points = real_error_curve(context, args.city, "deepst", sides, surrogate=True)
        rows = [
            [point.num_mgrids, round(point.real_error, 2), round(point.empirical_upper_bound, 2)]
            for point in points
        ]
        print(format_table(["n", "real error", "upper bound"], rows, title="Figure 5"))
    elif args.name == "fig6":
        points = run_task_assignment(
            context, args.city, "polar", "deepst", sides=sides, surrogate=True
        )
        rows = [
            [point.num_mgrids, point.metrics.served_orders, round(point.metrics.total_revenue, 1)]
            for point in points
        ]
        print(format_table(["n", "served orders", "revenue"], rows, title="Figure 6"))
    elif args.name == "table3":
        rows_data = table3_promotion(context, city=args.city, sides=sides)
        rows = [
            [row.algorithm, row.metric, f"{100 * row.improvement_ratio:.2f}%"]
            for row in rows_data
        ]
        print(format_table(["algorithm", "metric", "improvement"], rows, title="Table III"))
    elif args.name == "table4":
        _, summaries = evaluate_search_algorithms(
            context, args.city, slots=context.config.case_study_slots, surrogate=True
        )
        rows = [
            [s.algorithm, round(s.cost_seconds, 3), f"{100 * s.probability_optimal:.1f}%"]
            for s in summaries
        ]
        print(format_table(["algorithm", "cost (s)", "probability"], rows, title="Table IV"))
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown experiment {args.name!r}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    cities = [resolve_city(name.strip()) for name in args.preset.split(",") if name.strip()]
    models = [name.strip() for name in args.models.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    try:
        report = run_city_sweep(
            cities=cities,
            models=models,
            slots=args.slots,
            algorithm=args.algorithm,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
        )
    except ValueError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.task.city,
            o.task.model,
            o.task.slot,
            f"{o.result.best_side}x{o.result.best_side}",
            round(o.upper_bound, 2),
            o.result.evaluations,
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            ["city", "model", "slot", "grid", "upper bound", "evals", "seconds", "cache"],
            rows,
            title=f"OGSS sweep ({args.algorithm}, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} searches in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def _command_dispatch(args: argparse.Namespace) -> int:
    cities = [name.strip() for name in args.preset.split(",") if name.strip()]
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    try:
        report = run_dispatch_suite(
            cities=cities,
            policies=policies,
            fleet_sizes=args.fleet_sizes,
            demand_scales=args.demand_scales,
            seeds=args.seeds,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
            engine=args.engine,
            matching=args.matching,
            executor=args.executor,
            sparse=args.sparse,
            guidance=args.guidance,
            scenario_family=args.scenario,
            test_days=args.test_days,
            fleet_profile=args.fleet_profile,
            max_wait_minutes=args.max_wait,
        )
    except ValueError as exc:
        print(f"repro dispatch: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.scenario.city,
            o.scenario.policy,
            o.scenario.fleet_size,
            f"{o.scenario.demand_scale:g}x",
            o.scenario.seed,
            o.scenario.fleet_profile,
            o.scenario.test_days,
            o.metrics.served_orders,
            o.metrics.cancelled_orders,
            o.metrics.total_orders,
            f"{100 * o.metrics.service_rate:.1f}%",
            round(o.metrics.total_revenue, 1),
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            [
                "city",
                "policy",
                "fleet",
                "demand",
                "seed",
                "roster",
                "days",
                "served",
                "cancelled",
                "orders",
                "rate",
                "revenue",
                "seconds",
                "cache",
            ],
            rows,
            title=f"Dispatch scenario suite ({args.engine} engine, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} scenarios in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    cities = [name.strip() for name in args.preset.split(",") if name.strip()]
    models = [name.strip() for name in args.models.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    hyper = []
    if args.epochs is not None:
        hyper.append(("epochs", args.epochs))
    if args.max_train_samples is not None:
        hyper.append(("max_train_samples", args.max_train_samples))
    try:
        report = run_prediction_suite(
            cities=cities,
            models=models,
            resolutions=args.resolutions,
            seeds=args.seeds,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
            executor=args.executor,
            hyper=tuple(hyper),
        )
    except ValueError as exc:
        print(f"repro predict: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.scenario.city,
            o.scenario.model,
            f"{o.scenario.resolution}x{o.scenario.resolution}",
            o.scenario.seed,
            round(o.mae, 3),
            round(o.rmse, 3),
            o.epochs_run,
            "-" if o.best_epoch is None else o.best_epoch + 1,
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            [
                "city",
                "model",
                "grid",
                "seed",
                "mae",
                "rmse",
                "epochs",
                "best",
                "seconds",
                "cache",
            ],
            rows,
            title=f"Predictor suite ({args.executor} executor, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} predictors in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "tune":
        return _command_tune(args)
    if args.command == "curve":
        return _command_curve(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "dispatch":
        return _command_dispatch(args)
    if args.command == "predict":
        return _command_predict(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
