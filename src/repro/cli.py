"""Command-line interface for the GridTuner reproduction.

Three subcommands cover the common workflows:

``tune``
    Generate (or reuse) a synthetic city, tune the grid size for a prediction
    model and print the selected ``n`` plus the error decomposition.

``curve``
    Print the upper-bound curve (model error, expression error, total) over a
    range of candidate grid sizes.

``experiment``
    Run one of the named paper experiments (``fig3``, ``fig4`` ... ``table4``)
    at a chosen profile and print the reproduced series.

``sweep``
    Fan OGSS searches across (city preset x model x slot) combinations in
    parallel, with a persistent on-disk result cache (rerunning the same
    sweep replays it from the cache).

``dispatch``
    Fan dispatch simulations across (city x policy x fleet size x demand
    scale x seed) scenario points through the vectorized engine, with the
    same persistent result cache (reruns replay byte-stably).

``predict``
    Fan predictor trainings across (city x model x resolution x seed)
    scenario points through the prediction engine, with the same persistent
    result cache (reruns replay byte-stably).

``fuzz``
    Differential fuzzing of the dispatch engines: seeded micro-scenarios are
    replayed on the scalar oracle and every vector/sparse configuration;
    real divergences are shrunk to minimal canonical-JSON repro files.  A
    fixed ``--samples`` campaign is fully deterministic (same seed, same
    byte-identical report).

``serve``
    Boot the always-on dispatch service over one scenario: an HTTP ingest
    API (POST /orders, /drain; GET /healthz, /stats) in front of the
    admission scheduler and the continuous micro-batching match loop.
    Every admitted order is appended to a canonical-JSON ingest log whose
    offline replay reproduces the live metrics bit-for-bit.

``loadgen``
    Drive a service (a running ``serve`` instance via ``--url``, or an
    in-process one) with the scenario's seeded order stream at a
    configurable open-loop rate schedule, then drain and report sustained
    throughput, admission-to-assignment latency percentiles and the
    ingest-log replay-equality check.

Examples
--------
::

    python -m repro tune --city nyc_like --model deepst --budget 256 --algorithm iterative
    python -m repro curve --city xian_like --model historical_average --sides 2 4 8 16
    python -m repro experiment fig3 --profile tiny
    python -m repro sweep --preset nyc,chengdu,xian --slots 16 17 --workers 4
    python -m repro dispatch --preset nyc --fleet-sizes 100 200 --demand-scales 1 2
    python -m repro predict --preset nyc --models mlp,deepst --resolutions 4 8
    python -m repro fuzz --seed 7 --samples 200 --report fuzz-report.json
    python -m repro serve --preset nyc --port 8321 --ingest-log ingest.jsonl --drain-after 60
    python -m repro loadgen --url http://127.0.0.1:8321 --rate 250 --duration 20
    python -m repro loadgen --schedule 500:20,0:5,1000:10 --repeat-days 3 --assert-replay
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.tuner import GridTuner
from repro.data.dataset import EventDataset
from repro.data.presets import CITY_PRESETS, city_preset
from repro.experiments.case_study import run_task_assignment, table3_promotion
from repro.experiments.context import CITIES, MODELS, ExperimentContext
from repro.experiments.error_curves import (
    expression_error_curve,
    model_error_curve,
    real_error_curve,
)
from repro.experiments.dispatch_suite import run_dispatch_suite
from repro.experiments.prediction_suite import run_prediction_suite
from repro.experiments.multi_city import resolve_city, run_city_sweep
from repro.experiments.reporting import format_table
from repro.experiments.search_eval import evaluate_search_algorithms
from repro.fuzz import (
    BUG_INJECTIONS,
    FuzzWorld,
    GeneratorConfig,
    run_campaign,
    run_differential,
)
from repro.fuzz.generator import WORLD_POLICIES
from repro.prediction.registry import available_models, model_factory
from repro.service.chaos import BUGS as CHAOS_BUGS
from repro.utils.cache import canonical_json

#: Experiments runnable through ``python -m repro experiment <name>``.
EXPERIMENT_NAMES = ("fig3", "fig4", "fig5", "fig6", "table3", "table4")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GridTuner: optimal grid size selection for spatiotemporal prediction models",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="tune the grid size for one city/model")
    _add_dataset_arguments(tune)
    tune.add_argument(
        "--algorithm",
        choices=("brute_force", "ternary", "iterative"),
        default="iterative",
        help="OGSS search algorithm (default: iterative)",
    )

    curve = subparsers.add_parser("curve", help="print the upper-bound error curve")
    _add_dataset_arguments(curve)
    curve.add_argument(
        "--sides",
        type=int,
        nargs="+",
        default=None,
        help="candidate sqrt(n) values (default: divisors of sqrt(budget))",
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a named paper experiment"
    )
    experiment.add_argument("name", choices=EXPERIMENT_NAMES)
    experiment.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile (default: tiny)",
    )
    experiment.add_argument(
        "--city", choices=CITIES, default="nyc_like", help="city for per-city experiments"
    )

    sweep = subparsers.add_parser(
        "sweep", help="parallel OGSS sweep across city presets with result caching"
    )
    sweep.add_argument(
        "--preset",
        default="nyc,chengdu,xian",
        help="comma-separated city presets; short aliases allowed (default: nyc,chengdu,xian)",
    )
    sweep.add_argument(
        "--models",
        default="historical_average",
        help="comma-separated prediction models (default: historical_average)",
    )
    sweep.add_argument(
        "--slots",
        type=int,
        nargs="+",
        default=[16],
        help="time slots to tune (default: 16, the 08:00-08:30 peak)",
    )
    sweep.add_argument(
        "--algorithm",
        choices=("brute_force", "ternary", "iterative"),
        default="iterative",
        help="OGSS search algorithm (default: iterative)",
    )
    sweep.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset/budget (default: tiny)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads (default: min(tasks, CPU count))",
    )
    sweep.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )

    dispatch = subparsers.add_parser(
        "dispatch",
        help="parallel dispatch scenario suite (city x policy x fleet x demand x seed)",
    )
    dispatch.add_argument(
        "--preset",
        default="nyc",
        help="comma-separated city presets; short aliases allowed (default: nyc)",
    )
    dispatch.add_argument(
        "--policies",
        default="polar,ls",
        help="comma-separated dispatch policies (default: polar,ls)",
    )
    dispatch.add_argument(
        "--fleet-sizes",
        type=int,
        nargs="+",
        default=[100, 200],
        help="driver counts to sweep (default: 100 200)",
    )
    dispatch.add_argument(
        "--demand-scales",
        type=float,
        nargs="+",
        default=[1.0, 2.0],
        help="demand multipliers to sweep; 2.0 is a surge day (default: 1 2)",
    )
    dispatch.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7],
        help="random seeds to sweep (default: 7)",
    )
    dispatch.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset/slots (default: tiny)",
    )
    dispatch.add_argument(
        "--engine",
        choices=("vector", "scalar"),
        default="vector",
        help="simulation engine (default: vector; scalar is the reference oracle)",
    )
    dispatch.add_argument(
        "--matching",
        choices=("optimal", "greedy"),
        default="optimal",
        help="POLAR assignment solver (default: optimal)",
    )
    dispatch.add_argument(
        "--sparse",
        choices=("auto", "always", "never"),
        default="auto",
        help=(
            "vector-engine matching pipeline: grid-bucketed sparse matching "
            "on large batches (auto, default), forced (always) or the dense "
            "candidate matrix (never); metrics are identical in every mode"
        ),
    )
    dispatch.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "worker pool backend; 'process' sidesteps the GIL on "
            "matching-heavy scenario suites (default: thread)"
        ),
    )
    dispatch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads/processes (default: min(scenarios, CPU count))",
    )
    dispatch.add_argument(
        "--guidance",
        default="oracle",
        help=(
            "repositioning demand source: 'oracle' (realised demand), 'none' "
            "(no repositioning) or any registered prediction model name "
            "(e.g. mlp, deepst, dmvst_net, historical_average), which trains "
            "that predictor on the scenario's history and feeds its "
            "predictions to the dispatcher (default: oracle)"
        ),
    )
    dispatch.add_argument(
        "--scenario",
        choices=("grid", "lifecycle", "pathological"),
        default="grid",
        help=(
            "scenario family: the plain cross-product grid (default), its "
            "lifecycle/churn variants — rush-hour shift change, overnight "
            "skeleton fleet, high-cancellation surge and a 2-day carry-over "
            "replay per grid point; each variant overrides the one knob it "
            "stresses (--fleet-profile, --max-wait capped at 3, --test-days "
            "raised to >= 2 for the churn variant) — or the pathological "
            "stress variants graduated from the differential fuzzer (offset "
            "slot window, trailing empty slots, single-driver micro fleet, "
            "one-batch rider patience)"
        ),
    )
    dispatch.add_argument(
        "--test-days",
        type=int,
        default=1,
        help=(
            "consecutive test days replayed per scenario; fleet state "
            "(positions, availability, earnings) carries across the day "
            "boundaries (default: 1)"
        ),
    )
    dispatch.add_argument(
        "--fleet-profile",
        choices=("full_day", "two_shift", "skeleton"),
        default="full_day",
        help=(
            "driver shift roster: full_day (static fleet, default), "
            "two_shift (day/overnight shifts with an evening-rush change-"
            "over) or skeleton (overnight skeleton fleet)"
        ),
    )
    dispatch.add_argument(
        "--max-wait",
        type=float,
        default=10.0,
        help=(
            "rider patience in minutes; orders waiting longer are cancelled "
            "and counted in the cancelled metric (default: 10)"
        ),
    )
    dispatch.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )

    predict = subparsers.add_parser(
        "predict",
        help="parallel predictor-training suite (city x model x resolution x seed)",
    )
    predict.add_argument(
        "--preset",
        default="nyc",
        help="comma-separated city presets; short aliases allowed (default: nyc)",
    )
    predict.add_argument(
        "--models",
        default="historical_average,mlp",
        help=(
            "comma-separated prediction models "
            "(default: historical_average,mlp)"
        ),
    )
    predict.add_argument(
        "--resolutions",
        type=int,
        nargs="+",
        default=[8],
        help="MGrid resolutions sqrt(n) to train at (default: 8)",
    )
    predict.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7],
        help="random seeds to sweep (default: 7)",
    )
    predict.add_argument(
        "--profile",
        choices=("tiny", "small", "paper"),
        default="tiny",
        help="experiment scale profile for dataset size (default: tiny)",
    )
    predict.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="override training epochs for the neural models",
    )
    predict.add_argument(
        "--max-train-samples",
        type=int,
        default=None,
        help="override the training-sample cap for the neural models",
    )
    predict.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker pool backend (default: thread)",
    )
    predict.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads/processes (default: min(scenarios, CPU count))",
    )
    predict.add_argument(
        "--cache-dir",
        default=".gridtuner_cache",
        help="persistent result-cache directory; 'none' disables caching",
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help=(
            "differential fuzzing of the dispatch engines (scalar oracle vs "
            "dense/sparse/mixed vector runs)"
        ),
    )
    fuzz.add_argument("--seed", type=int, default=7, help="campaign seed (default: 7)")
    fuzz.add_argument(
        "--samples",
        type=int,
        default=None,
        help="number of generated worlds to replay (default: 100 unless --budget is given)",
    )
    fuzz.add_argument(
        "--budget",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds; the campaign stops at the budget "
            "or --samples, whichever hits first (budgeted reports are not "
            "byte-stable across machines)"
        ),
    )
    fuzz.add_argument(
        "--policies",
        default=",".join(WORLD_POLICIES),
        help=f"comma-separated policies to fuzz (default: {','.join(WORLD_POLICIES)})",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking; repro files hold the original diverging worlds",
    )
    fuzz.add_argument(
        "--max-shrink-evals",
        type=int,
        default=400,
        help="replay budget of the shrinker per failure (default: 400)",
    )
    fuzz.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the canonical-JSON campaign report to FILE",
    )
    fuzz.add_argument(
        "--repro-dir",
        default=".fuzz_repros",
        help=(
            "directory for shrunk repro files, created only on failure "
            "(default: .fuzz_repros; 'none' disables)"
        ),
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help=(
            "replay one repro/world JSON file on every engine instead of "
            "running a campaign"
        ),
    )
    fuzz.add_argument(
        "--inject-bug",
        choices=sorted(BUG_INJECTIONS),
        default=None,
        help=(
            "apply a named deliberate engine bug to the vector runs (harness "
            "self-test: the campaign must fail)"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="boot the always-on dispatch service (HTTP ingest + match loop)",
    )
    _add_service_scenario_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port; 0 binds an ephemeral port (default: 8321)",
    )
    _add_service_runtime_arguments(serve)
    serve.add_argument(
        "--drain-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "drain and exit after this many seconds unless a client POSTs "
            "/drain first (default: run until drained over HTTP)"
        ),
    )
    serve.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the final service report as canonical JSON to FILE",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help=(
            "resume a crashed run from the existing --ingest-log WAL "
            "(scenario flags are ignored; the log header wins) instead of "
            "starting fresh"
        ),
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a dispatch service with the scenario's seeded order stream",
    )
    _add_service_scenario_arguments(loadgen)
    loadgen.add_argument(
        "--url",
        default=None,
        help=(
            "base URL of a running `repro serve` instance; omitted, the "
            "service is hosted in-process (the scenario flags must match "
            "the server's when --url is used)"
        ),
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="offered load in orders/second (default: 200)",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="seconds per schedule cycle at --rate (default: 30)",
    )
    loadgen.add_argument(
        "--schedule",
        default=None,
        metavar="RATE:SECONDS,...",
        help=(
            "explicit load phases, e.g. 500:20,0:5,1000:10 (overrides "
            "--rate/--duration; rate 0 is an idle gap)"
        ),
    )
    loadgen.add_argument(
        "--repeat-days",
        type=int,
        default=1,
        help="tile the scenario's day-0 stream across this many days (default: 1)",
    )
    loadgen.add_argument(
        "--max-orders",
        type=int,
        default=None,
        help="truncate the (tiled) stream to this many orders",
    )
    _add_service_runtime_arguments(loadgen)
    loadgen.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the offline ingest-log replay check",
    )
    loadgen.add_argument(
        "--assert-replay",
        action="store_true",
        help=(
            "fail (exit 1) unless the ingest-log replay reproduces the live "
            "metrics bit-for-bit (requires --ingest-log)"
        ),
    )
    loadgen.add_argument(
        "--assert-max-pending",
        type=int,
        default=None,
        metavar="N",
        help="fail (exit 1) if the pending backlog ever exceeded N orders",
    )
    loadgen.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the combined load report as canonical JSON to FILE",
    )
    loadgen.add_argument(
        "--send-malformed",
        action="store_true",
        help=(
            "self-test the rejection path: submit one malformed order and "
            "exit 2 once the service rejects it cleanly"
        ),
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "HTTP client retries per order for connection failures, 5xx and "
            "429 backpressure, with seeded exponential backoff (default: 0)"
        ),
    )

    chaos = subparsers.add_parser(
        "chaos",
        help=(
            "seeded fault-injection campaign against the live service "
            "(crash/recovery, backpressure, dropped connections, stalls)"
        ),
    )
    chaos.add_argument("--seed", type=int, default=7, help="campaign seed (default: 7)")
    chaos.add_argument(
        "--samples",
        type=int,
        default=5,
        help=(
            "number of faulted service runs; kinds cycle crash, "
            "backpressure, crash-mid-append, drop, stall (default: 5)"
        ),
    )
    chaos.add_argument(
        "--stream-orders",
        type=int,
        default=96,
        help="orders offered per sample from the pinned scenario (default: 96)",
    )
    chaos.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="match-loop micro-batch cap, which pins crash points (default: 16)",
    )
    chaos.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the canonical-JSON campaign report to FILE (byte-stable)",
    )
    chaos.add_argument(
        "--inject-bug",
        choices=sorted(CHAOS_BUGS),
        default=None,
        help=(
            "plant a known recovery-divergence defect (harness self-test: "
            "the campaign must fail)"
        ),
    )

    lint = subparsers.add_parser(
        "lint",
        help=(
            "AST-based determinism & concurrency invariant checker "
            "(DET/CONC/API rules; exits 1 on new findings)"
        ),
    )
    # The lint package owns its argument surface so ``python -m repro.lint``
    # and ``repro lint`` stay identical; import lazily like the service verbs.
    from repro.lint.runner import build_arg_parser as _build_lint_arguments

    _build_lint_arguments(lint)
    return parser


def _add_service_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="nyc",
        help="city preset; short aliases allowed (default: nyc)",
    )
    parser.add_argument(
        "--policy",
        choices=("polar", "ls"),
        default="polar",
        help="dispatch policy (default: polar)",
    )
    parser.add_argument(
        "--matching",
        choices=("optimal", "greedy"),
        default="greedy",
        help="POLAR assignment solver (default: greedy, the city-scale profile)",
    )
    parser.add_argument(
        "--fleet-size", type=int, default=200, help="driver count (default: 200)"
    )
    parser.add_argument(
        "--demand-scale", type=float, default=1.0, help="demand multiplier (default: 1)"
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario seed (default: 7)")
    parser.add_argument(
        "--slots",
        type=int,
        nargs="+",
        default=None,
        help="slots of the test day to serve (default: the whole day)",
    )


def _add_service_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="micro-batch cap of the match loop (default: 256)",
    )
    parser.add_argument(
        "--cadence",
        type=float,
        default=0.05,
        help=(
            "idle-tick timeout of the match loop in seconds; arrivals are "
            "matched immediately regardless (default: 0.05)"
        ),
    )
    parser.add_argument(
        "--sparse",
        choices=("auto", "always", "never"),
        default="auto",
        help="vector-engine matching pipeline (default: auto)",
    )
    parser.add_argument(
        "--ingest-log",
        default=None,
        metavar="FILE",
        help=(
            "append every admitted order to this canonical-JSONL log; its "
            "offline replay reproduces the live metrics bit-for-bit"
        ),
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bounded admission: shed orders (HTTP 429 + Retry-After) once "
            "N are pending — staged plus unresolved (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--fsync-ingest",
        action="store_true",
        help=(
            "fsync the ingest log after every batch (durable against host "
            "power loss; a process crash loses nothing either way)"
        ),
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", choices=sorted(CITY_PRESETS), default="nyc_like")
    parser.add_argument(
        "--model",
        choices=available_models(),
        default="historical_average",
        help="prediction model (default: historical_average)",
    )
    parser.add_argument("--scale", type=float, default=0.01, help="city volume scale")
    parser.add_argument("--days", type=int, default=21, help="days of history to generate")
    parser.add_argument("--budget", type=int, default=256, help="HGrid budget N (perfect square)")
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _build_tuner(args: argparse.Namespace) -> GridTuner:
    dataset = EventDataset.from_city(
        city_preset(args.city, scale=args.scale), num_days=args.days, seed=args.seed
    )
    return GridTuner(dataset, model_factory(args.model), hgrid_budget=args.budget)


def _command_tune(args: argparse.Namespace) -> int:
    tuner = _build_tuner(args)
    result = tuner.select(args.algorithm, min_side=2)
    report = tuner.evaluate_real_error(result.optimal_side)
    print(f"city: {args.city}   model: {args.model}   N = {args.budget}")
    print(
        f"selected n = {result.optimal_side}x{result.optimal_side} "
        f"({result.optimal_n} MGrids) via {args.algorithm} "
        f"after {result.search.evaluations} evaluations"
    )
    rows = [
        ["model error", round(report.model_error, 2)],
        ["expression error", round(report.expression_error, 2)],
        ["upper bound", round(report.upper_bound, 2)],
        ["real error", round(report.real_error, 2)],
        ["Theorem II.1 holds", report.satisfies_upper_bound()],
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _command_curve(args: argparse.Namespace) -> int:
    tuner = _build_tuner(args)
    curve = tuner.error_curve(args.sides)
    rows = [
        [
            f"{side}x{side}",
            round(result.model_error, 2),
            round(result.expression_error, 2),
            round(result.total, 2),
        ]
        for side, result in curve.items()
    ]
    print(
        format_table(
            ["grid", "model error", "expression error", "upper bound"],
            rows,
            title=f"Upper-bound curve ({args.city}, {args.model}, N={args.budget})",
        )
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext.from_profile(args.profile)
    sides = list(context.config.mgrid_sides)
    if args.name == "fig3":
        curves = expression_error_curve(context, CITIES, sides)
        rows = [
            [city, point.num_mgrids, round(point.value, 2)]
            for city, points in curves.items()
            for point in points
        ]
        print(format_table(["city", "n", "expression error"], rows, title="Figure 3"))
    elif args.name == "fig4":
        curves = model_error_curve(context, args.city, MODELS, sides, surrogate=True)
        rows = [
            [model, point.num_mgrids, round(point.value, 2)]
            for model, points in curves.items()
            for point in points
        ]
        print(format_table(["model", "n", "model error"], rows, title="Figure 4"))
    elif args.name == "fig5":
        points = real_error_curve(context, args.city, "deepst", sides, surrogate=True)
        rows = [
            [point.num_mgrids, round(point.real_error, 2), round(point.empirical_upper_bound, 2)]
            for point in points
        ]
        print(format_table(["n", "real error", "upper bound"], rows, title="Figure 5"))
    elif args.name == "fig6":
        points = run_task_assignment(
            context, args.city, "polar", "deepst", sides=sides, surrogate=True
        )
        rows = [
            [point.num_mgrids, point.metrics.served_orders, round(point.metrics.total_revenue, 1)]
            for point in points
        ]
        print(format_table(["n", "served orders", "revenue"], rows, title="Figure 6"))
    elif args.name == "table3":
        rows_data = table3_promotion(context, city=args.city, sides=sides)
        rows = [
            [row.algorithm, row.metric, f"{100 * row.improvement_ratio:.2f}%"]
            for row in rows_data
        ]
        print(format_table(["algorithm", "metric", "improvement"], rows, title="Table III"))
    elif args.name == "table4":
        _, summaries = evaluate_search_algorithms(
            context, args.city, slots=context.config.case_study_slots, surrogate=True
        )
        rows = [
            [s.algorithm, round(s.cost_seconds, 3), f"{100 * s.probability_optimal:.1f}%"]
            for s in summaries
        ]
        print(format_table(["algorithm", "cost (s)", "probability"], rows, title="Table IV"))
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown experiment {args.name!r}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    cities = [resolve_city(name.strip()) for name in args.preset.split(",") if name.strip()]
    models = [name.strip() for name in args.models.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    try:
        report = run_city_sweep(
            cities=cities,
            models=models,
            slots=args.slots,
            algorithm=args.algorithm,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
        )
    except (ValueError, OSError) as exc:
        # OSError covers unusable cache directories (e.g. the path exists
        # as a regular file) surfacing from ResultCache.
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.task.city,
            o.task.model,
            o.task.slot,
            f"{o.result.best_side}x{o.result.best_side}",
            round(o.upper_bound, 2),
            o.result.evaluations,
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            ["city", "model", "slot", "grid", "upper bound", "evals", "seconds", "cache"],
            rows,
            title=f"OGSS sweep ({args.algorithm}, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} searches in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def _command_dispatch(args: argparse.Namespace) -> int:
    cities = [name.strip() for name in args.preset.split(",") if name.strip()]
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    try:
        report = run_dispatch_suite(
            cities=cities,
            policies=policies,
            fleet_sizes=args.fleet_sizes,
            demand_scales=args.demand_scales,
            seeds=args.seeds,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
            engine=args.engine,
            matching=args.matching,
            executor=args.executor,
            sparse=args.sparse,
            guidance=args.guidance,
            scenario_family=args.scenario,
            test_days=args.test_days,
            fleet_profile=args.fleet_profile,
            max_wait_minutes=args.max_wait,
        )
    except (ValueError, OSError) as exc:
        # OSError covers unusable cache directories (e.g. the path exists
        # as a regular file) surfacing from ResultCache.
        print(f"repro dispatch: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.scenario.city,
            o.scenario.policy,
            o.scenario.fleet_size,
            f"{o.scenario.demand_scale:g}x",
            o.scenario.seed,
            o.scenario.fleet_profile,
            o.scenario.test_days,
            o.metrics.served_orders,
            o.metrics.cancelled_orders,
            o.metrics.total_orders,
            f"{100 * o.metrics.service_rate:.1f}%",
            round(o.metrics.total_revenue, 1),
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            [
                "city",
                "policy",
                "fleet",
                "demand",
                "seed",
                "roster",
                "days",
                "served",
                "cancelled",
                "orders",
                "rate",
                "revenue",
                "seconds",
                "cache",
            ],
            rows,
            title=f"Dispatch scenario suite ({args.engine} engine, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} scenarios in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    cities = [name.strip() for name in args.preset.split(",") if name.strip()]
    models = [name.strip() for name in args.models.split(",") if name.strip()]
    cache_dir = None if args.cache_dir.lower() == "none" else args.cache_dir
    hyper = []
    if args.epochs is not None:
        hyper.append(("epochs", args.epochs))
    if args.max_train_samples is not None:
        hyper.append(("max_train_samples", args.max_train_samples))
    try:
        report = run_prediction_suite(
            cities=cities,
            models=models,
            resolutions=args.resolutions,
            seeds=args.seeds,
            profile=args.profile,
            cache_dir=cache_dir,
            max_workers=args.workers,
            executor=args.executor,
            hyper=tuple(hyper),
        )
    except (ValueError, OSError) as exc:
        # OSError covers unusable cache directories (e.g. the path exists
        # as a regular file) surfacing from ResultCache.
        print(f"repro predict: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            o.scenario.city,
            o.scenario.model,
            f"{o.scenario.resolution}x{o.scenario.resolution}",
            o.scenario.seed,
            round(o.mae, 3),
            round(o.rmse, 3),
            o.epochs_run,
            "-" if o.best_epoch is None else o.best_epoch + 1,
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            [
                "city",
                "model",
                "grid",
                "seed",
                "mae",
                "rmse",
                "epochs",
                "best",
                "seconds",
                "cache",
            ],
            rows,
            title=f"Predictor suite ({args.executor} executor, profile={args.profile})",
        )
    )
    print(
        f"{len(report.outcomes)} predictors in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )
    if cache_dir is not None:
        print(f"result cache: {cache_dir}")
    return 0


def _replay_world(path: str, bug: Optional[str]) -> int:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    expect = "identical"
    note = ""
    if "world" in payload:
        expect = payload.get("expect", "identical")
        note = payload.get("note", "")
        payload = payload["world"]
    world = FuzzWorld.from_payload(payload)
    result = run_differential(world, bug=bug)
    print(f"replay: {path}")
    if note:
        print(f"note: {note}")
    print(
        f"world: policy={world.policy} orders={world.order_count} "
        f"drivers={world.driver_count} days={world.days} [{world.canonical_key()[:12]}]"
    )
    print(f"verdict: {result.verdict} (expected: {expect})")
    for divergence in result.divergences:
        flavour = "benign tie" if divergence.benign_tie else "DIVERGENT"
        print(f"  {divergence.mode}: {flavour} — {divergence.detail}")
    return 1 if result.failed else 0


def _command_fuzz(args: argparse.Namespace) -> int:
    try:
        if args.replay is not None:
            return _replay_world(args.replay, args.inject_bug)
        samples = args.samples
        if samples is None and args.budget is None:
            samples = 100
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
        config = GeneratorConfig(policies=policies)
        report = run_campaign(
            seed=args.seed,
            samples=samples,
            budget_seconds=args.budget,
            config=config,
            bug=args.inject_bug,
            shrink=not args.no_shrink,
            max_shrink_evals=args.max_shrink_evals,
        )
    except (ValueError, OSError) as exc:
        print(f"repro fuzz: {exc}", file=sys.stderr)
        return 2
    print(
        f"fuzz campaign: seed={report.seed} samples={report.samples_run} "
        f"policies={','.join(policies)}"
        + (f" bug={report.bug}" if report.bug else "")
    )
    print(
        f"{report.ok} ok, {len(report.benign_ties)} benign tie(s), "
        f"{len(report.failures)} failure(s)"
    )
    for record in report.benign_ties:
        modes = ",".join(d["mode"] for d in record.divergences)
        print(
            f"  benign tie: sample {record.index} [{record.world_key[:12]}] "
            f"{record.label} ({modes})"
        )
    repro_dir = None if args.repro_dir.lower() == "none" else args.repro_dir
    for record in report.failures:
        modes = ",".join(d["mode"] for d in record.divergences)
        line = (
            f"  FAILURE: sample {record.index} [{record.world_key[:12]}] "
            f"{record.label} ({modes})"
        )
        if record.shrunk_world is not None:
            shrunk = record.shrunk_world
            orders = sum(len(day) for day in shrunk["orders_per_day"])
            line += (
                f" -> shrunk to {orders} order(s) / {len(shrunk['drivers'])} "
                f"driver(s) / {len(shrunk['orders_per_day'])} day(s)"
            )
        print(line)
        for divergence in record.divergences:
            print(f"    {divergence['mode']}: {divergence['detail']}")
    if report.failures and repro_dir is not None:
        import os

        os.makedirs(repro_dir, exist_ok=True)
        for record in report.failures:
            payload = {
                "schema": 1,
                "expect": "identical",
                "note": f"fuzz seed={report.seed} sample={record.index}: {record.label}",
                "world": record.shrunk_world,
            }
            if report.bug:
                payload["bug"] = report.bug
            path = os.path.join(
                repro_dir, f"fuzz-{report.seed}-{record.index}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(payload))
            print(f"  repro written: {path}")
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report.to_payload()))
        print(f"report written: {args.report}")
    return 1 if report.failed else 0


def _service_scenario(args: argparse.Namespace):
    from repro.dispatch.scenarios import DispatchScenario

    return DispatchScenario(
        city=resolve_city(args.preset.strip()),
        policy=args.policy,
        matching=args.matching,
        fleet_size=args.fleet_size,
        demand_scale=args.demand_scale,
        seed=args.seed,
        slots=tuple(args.slots) if args.slots is not None else None,
    )


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        DispatchService,
        ServiceConfig,
        ServiceFailedError,
        serve_http,
    )

    try:
        if args.recover:
            if args.ingest_log is None:
                raise ValueError("--recover requires --ingest-log (the WAL to replay)")
            service = DispatchService.recover(
                args.ingest_log,
                sparse=None if args.sparse == "auto" else args.sparse,
                max_batch=args.max_batch,
                cadence_seconds=args.cadence,
                max_pending=args.max_pending,
                fsync_ingest=args.fsync_ingest,
            )
            scenario = service.config.scenario
        else:
            scenario = _service_scenario(args)
            config = ServiceConfig(
                scenario=scenario,
                sparse=args.sparse,
                max_batch=args.max_batch,
                cadence_seconds=args.cadence,
                ingest_log=args.ingest_log,
                max_pending=args.max_pending,
                fsync_ingest=args.fsync_ingest,
            )
            service = DispatchService(config).start()
        server = serve_http(service, host=args.host, port=args.port)
    except (ValueError, OSError) as exc:
        # OSError covers an already-bound port (EADDRINUSE) and unwritable
        # ingest-log paths.
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"serving {scenario.label} at http://{host}:{port}")
    print("routes: POST /orders /drain   GET /healthz /stats")
    if args.ingest_log is not None:
        print(f"ingest log: {args.ingest_log}")
    if args.recover:
        print(
            f"recovered {service.recovered_orders} order(s) from the WAL"
            + (" (truncated final record discarded)" if service.recovered_truncated else "")
        )
    try:
        # Run until a client drains us over HTTP, --drain-after elapses, or
        # the match loop fails (terminal covers both drained and failed).
        if not service.terminal.wait(timeout=args.drain_after):
            service.drain()
        report = service.drain()
    except KeyboardInterrupt:
        report = service.drain()
    except ServiceFailedError as exc:
        print(f"repro serve: SERVICE FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        server.shutdown()
    print(
        f"drained: {report.orders_admitted} admitted, {report.assigned} assigned, "
        f"{report.cancelled} cancelled, {report.unserved} unserved, "
        f"{report.orders_shed} shed "
        f"({report.orders_per_sec:.1f} orders/s sustained, "
        f"p50 {report.latency_p50_ms:.1f} ms, p99 {report.latency_p99_ms:.1f} ms)"
    )
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report.to_payload()))
        print(f"report written: {args.report}")
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.experiments.service_load import run_service_load
    from repro.service import AdmissionError, HttpClient
    from repro.service.loadgen import MALFORMED_ORDER, parse_schedule

    try:
        if args.send_malformed:
            if args.url is None:
                raise ValueError("--send-malformed requires --url")
            try:
                HttpClient(args.url).submit(MALFORMED_ORDER)
            except AdmissionError as exc:
                print(f"repro loadgen: malformed order rejected: {exc}", file=sys.stderr)
                return 2
            print(
                "repro loadgen: malformed order was ACCEPTED; "
                "the admission validator is broken",
                file=sys.stderr,
            )
            return 1
        scenario = _service_scenario(args)
        if args.schedule is not None:
            phases = parse_schedule(args.schedule)
        else:
            phases = parse_schedule(f"{args.rate:g}:{args.duration:g}")
        report = run_service_load(
            scenario,
            phases,
            repeat_days=args.repeat_days,
            max_orders=args.max_orders,
            ingest_log=args.ingest_log,
            max_batch=args.max_batch,
            cadence_seconds=args.cadence,
            sparse=args.sparse,
            url=args.url,
            check_replay=not args.no_replay,
            max_pending=args.max_pending,
            retries=args.retries,
        )
    except (ValueError, OSError) as exc:
        # OSError includes ServiceUnavailableError: a dead or unreachable
        # --url endpoint is an environment problem, exit 2 with one line.
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2
    service = report["service"]
    metrics = service["metrics"]
    print(
        f"loadgen: {report['orders_offered']} orders offered at "
        f"{report['loadgen']['offered_rate']:.1f}/s "
        f"({len(report['phases'])} phase(s), {args.repeat_days} day(s))"
    )
    print(
        f"service: {service['orders_admitted']} admitted, "
        f"{service['assigned']} assigned, {service['cancelled']} cancelled, "
        f"{service['unserved']} unserved; {service['orders_per_sec']:.1f} "
        f"orders/s sustained, p50 {service['latency_p50_ms']:.1f} ms, "
        f"p99 {service['latency_p99_ms']:.1f} ms, "
        f"max pending {service['max_pending']}"
    )
    shed = report["loadgen"].get("orders_shed", 0)
    retries = report["loadgen"].get("retries", 0)
    if shed or retries:
        print(f"backpressure: {shed} shed, {retries} client retries")
    print(
        f"metrics: served={metrics['served_orders']} "
        f"cancelled={metrics['cancelled_orders']} "
        f"revenue={metrics['total_revenue']:.2f} "
        f"unified_cost={metrics['unified_cost']:.2f}"
    )
    failures = []
    if "replay" in report:
        equal = report["replay"]["replay_equal"]
        print(f"replay: offline metrics {'MATCH bit-for-bit' if equal else 'DIVERGE'}")
        if args.assert_replay and not equal:
            failures.append("ingest-log replay metrics diverge from the live run")
    elif args.assert_replay:
        failures.append("--assert-replay needs an ingest log (--ingest-log)")
    if (
        args.assert_max_pending is not None
        and service["max_pending"] > args.assert_max_pending
    ):
        failures.append(
            f"pending backlog peaked at {service['max_pending']} orders "
            f"(limit {args.assert_max_pending}); unbounded growth"
        )
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report))
        print(f"report written: {args.report}")
    for failure in failures:
        print(f"LOADGEN FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.service.chaos import run_campaign as run_chaos_campaign

    try:
        report = run_chaos_campaign(
            seed=args.seed,
            samples=args.samples,
            bug=args.inject_bug,
            stream_orders=args.stream_orders,
            max_batch=args.max_batch,
            on_progress=lambda sample: print(
                f"  sample {sample.index} [{sample.kind}]: {sample.verdict}"
            ),
        )
    except (ValueError, OSError) as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    print(
        f"chaos campaign: seed={report.seed} samples={report.samples_run}"
        + (f" bug={report.bug}" if report.bug else "")
    )
    print(f"{report.ok} ok, {len(report.failures)} divergent")
    for sample in report.failures:
        failed = ",".join(
            name for name, passed in sample.checks.items() if not passed
        )
        print(f"  FAILURE: sample {sample.index} [{sample.kind}]: {failed}")
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report.to_payload()))
        print(f"report written: {args.report}")
    return 1 if report.failed else 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import run_from_args

    return run_from_args(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "tune":
        return _command_tune(args)
    if args.command == "curve":
        return _command_curve(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "dispatch":
        return _command_dispatch(args)
    if args.command == "predict":
        return _command_predict(args)
    if args.command == "fuzz":
        return _command_fuzz(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "loadgen":
        return _command_loadgen(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "lint":
        return _command_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
