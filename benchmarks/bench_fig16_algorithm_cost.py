"""Figure 16 — cost and accuracy of the expression-error calculators vs K.

Paper shape: the straightforward evaluation and Algorithm 1 get expensive as K
grows while Algorithm 2's cost stays low; accuracy saturates well before the
paper's default K = 250.

Extension: the batched engine replaces a city probe's per-HGrid scalar loop
with a few vectorised passes; the second table measures that speed-up.
"""

from conftest import run_once

from repro.experiments.algorithm_cost import algorithm_cost_sweep, batch_cost_sweep
from repro.experiments.reporting import format_table

K_VALUES = (10, 20, 40, 80)
BATCH_SIZES = (256, 1024, 4096)


def test_fig16_algorithm_cost(benchmark):
    points = run_once(
        benchmark,
        algorithm_cost_sweep,
        3.0,
        45.0,
        16,
        K_VALUES,
        True,
    )
    rows = [
        [
            p.k,
            round(p.reference_seconds * 1e3, 3),
            round(p.algorithm1_seconds * 1e3, 3),
            round(p.algorithm2_seconds * 1e3, 3),
            f"{p.algorithm2_speedup:.1f}x",
            f"{p.algorithm2_absolute_error:.2e}",
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["K", "reference (ms)", "algorithm 1 (ms)", "algorithm 2 (ms)", "alg2 speedup", "alg2 |error|"],
            rows,
            title="Figure 16: expression-error calculator cost vs K",
        )
    )
    largest = points[-1]
    # Algorithm 2 is the cheapest at the largest K and agrees with the reference.
    assert largest.algorithm2_seconds <= largest.algorithm1_seconds
    assert largest.algorithm2_absolute_error < 1e-6
    # Algorithm 1's cost grows faster than Algorithm 2's as K increases.
    growth_alg1 = points[-1].algorithm1_seconds / max(points[0].algorithm1_seconds, 1e-9)
    growth_alg2 = points[-1].algorithm2_seconds / max(points[0].algorithm2_seconds, 1e-9)
    assert growth_alg1 > growth_alg2


def test_fig16_batched_city_probe(benchmark):
    """Batched engine vs per-HGrid scalar loop for a whole-city probe."""
    points = run_once(benchmark, batch_cost_sweep, BATCH_SIZES)
    rows = [
        [
            p.num_cells,
            round(p.scalar_seconds * 1e3, 3),
            round(p.batch_seconds * 1e3, 3),
            f"{p.batch_speedup:.1f}x",
            f"{p.max_abs_difference:.2e}",
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["cells", "scalar loop (ms)", "batched (ms)", "batch speedup", "max |diff|"],
            rows,
            title="Figure 16 extension: batched engine vs scalar loop per city probe",
        )
    )
    largest = points[-1]
    # The batched engine is faster at city scale and numerically equivalent.
    assert largest.batch_seconds < largest.scalar_seconds
    assert largest.max_abs_difference < 1e-9
