"""Shared helpers for the CI perf-regression gates and benchmarks.

Every ``check_*_regression.py`` gate follows the same shape: load a freshly
emitted ``BENCH_*.json``, load the committed ``baseline_*.json``, compare
deterministic metrics at a tight relative tolerance, enforce speedup /
throughput floors and wall-time ceilings, print a human-readable summary,
and exit 1 with a ``PERF GATE FAILED`` block on any problem.  This module
holds the pieces that were previously duplicated per gate:

* :func:`best_of` — best-of-N wall-clock timing (benchmarks);
* :func:`compare_metrics` — per-key baseline comparison with
  ``math.isclose`` at the baseline's ``metrics_rtol``;
* :func:`check_floor` / :func:`check_ceiling` — floor ratios (speedups,
  sustained throughput) and baseline-relative wall-time/latency ceilings;
* :func:`run_gate_cli` — the shared ``main()``: argument parsing, payload
  loading, summary printing and the pass/fail exit protocol.

The gate modules stay importable standalone (``importlib`` loads them by
file path in ``tests/test_perf_gate.py``), so they add this directory to
``sys.path`` before ``import gatelib`` — the same idiom the benchmarks use
for ``src``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional


def best_of(callable_: Callable[[], Any], repeats: int = 3) -> float:
    """Best (minimum) wall-clock seconds of ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def compare_metrics(
    current: Dict[str, Any], baseline: Dict[str, Any], rtol: float
) -> List[str]:
    """Compare every baseline metric against the fresh payload.

    Metrics are deterministic functions of the scenario seed, so ``rtol``
    is tight (typically ``1e-9``); any drift means semantics changed, not
    noise.  Missing keys are reported as problems too.
    """
    problems = []
    for key, expected in baseline.items():
        actual = current.get(key)
        if actual is None:
            problems.append(f"metric {key!r} missing from benchmark output")
            continue
        if not math.isclose(float(actual), float(expected), rel_tol=rtol, abs_tol=rtol):
            problems.append(
                f"metric {key!r} drifted: baseline {expected!r}, got {actual!r}"
            )
    return problems


def check_floor(
    value: float, floor: float, label: str, unit: str = "x"
) -> Optional[str]:
    """Ratio/throughput floor: ``value`` must stay at or above ``floor``."""
    if float(value) < float(floor):
        return (
            f"{label} {float(value):.2f}{unit} below the {float(floor):.2f}{unit} floor"
        )
    return None


def check_ceiling(
    value: float,
    ceiling: float,
    label: str,
    unit: str = "s",
    context: str = "",
) -> Optional[str]:
    """Absolute ceiling: ``value`` must stay at or below ``ceiling``."""
    if float(value) > float(ceiling):
        suffix = f" ({context})" if context else ""
        return (
            f"{label} {float(value):.3f}{unit} exceeds {float(ceiling):.3f}{unit}"
            f"{suffix}"
        )
    return None


def check_baseline_ceiling(
    value: float, baseline_value: float, factor: float, label: str, unit: str = "s"
) -> Optional[str]:
    """Baseline-relative ceiling: at most ``factor`` times the committed value."""
    return check_ceiling(
        value,
        float(baseline_value) * float(factor),
        label,
        unit=unit,
        context=f"{float(factor):g}x the committed baseline",
    )


def run_gate_cli(
    description: str,
    default_baseline: Path,
    check: Callable[[Dict, Dict], List[str]],
    summarize: Callable[[Dict], None],
    argv: Optional[List[str]] = None,
) -> int:
    """The shared gate ``main()``: load payloads, summarise, check, exit.

    ``check(current, baseline)`` returns human-readable problem strings
    (empty means pass); ``summarize(current)`` prints the per-section
    one-liners shown on every run, pass or fail.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("benchmark", help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--baseline",
        default=str(default_baseline),
        help=f"committed baseline JSON (default: {default_baseline.name})",
    )
    args = parser.parse_args(argv)
    current = json.loads(Path(args.benchmark).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    problems = check(current, baseline)
    summarize(current)
    if problems:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0
