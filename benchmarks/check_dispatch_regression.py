"""CI perf-regression gate for the dispatch engine benchmark.

Compares a freshly emitted ``BENCH_dispatch.json`` (from
``benchmarks/bench_dispatch_engine.py``) against the committed baseline
``benchmarks/baseline_dispatch.json`` and fails (exit code 1) on regression:

* **Correctness** — every configuration must report bit-identical metrics
  between the vectorized and scalar engines, and the metric values must match
  the baseline within ``metrics_rtol`` (they are deterministic functions of
  the scenario seed, so any drift means the engine's semantics changed).
* **Speed** — the vectorized/scalar speedup must stay above
  ``min_speedup`` per configuration.  The ratio is used as the primary gate
  because it is robust to CI hardware differences; an absolute wall-time
  ceiling (``max_vector_seconds_factor`` times the baseline measurement)
  additionally catches pathological slowdowns that hit both engines.
* **Sparse matching** — on the pinned large-fleet stress scenario the sparse
  pipeline must report metrics bit-identical to the dense vector engine
  (``metrics_equal``), metric values matching the baseline within
  ``metrics_rtol``, and a sparse/dense speedup above ``min_sparse_speedup``.
* **Fleet lifecycle** — on the pinned lifecycle stress scenario (two-shift
  2000-driver fleet, 2 surge test days, 6-minute rider patience) the
  vectorized engine must report metrics — including ``cancelled_orders`` —
  bit-identical to the scalar oracle, matching the baseline within
  ``metrics_rtol``, with a speedup above ``min_lifecycle_speedup`` and a
  wall-time ceiling like the engine configurations.

Usage::

    python benchmarks/bench_dispatch_engine.py --output BENCH_dispatch.json
    python benchmarks/check_dispatch_regression.py BENCH_dispatch.json
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

_BENCHMARKS = Path(__file__).resolve().parent
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from gatelib import (  # noqa: E402
    check_baseline_ceiling,
    check_floor,
    compare_metrics as _compare_metrics,
    run_gate_cli,
)

DEFAULT_BASELINE = _BENCHMARKS / "baseline_dispatch.json"


def check(current: Dict, baseline: Dict) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = pass)."""
    gates = baseline.get("gates", {})
    min_speedup = float(gates.get("min_speedup", 1.5))
    rtol = float(gates.get("metrics_rtol", 1e-9))
    time_factor = float(gates.get("max_vector_seconds_factor", 5.0))
    problems: List[str] = []

    baseline_engines = {
        (entry["policy"], entry["matching"]): entry for entry in baseline["engines"]
    }
    current_engines = {
        (entry["policy"], entry["matching"]): entry for entry in current.get("engines", [])
    }
    for key, base_entry in baseline_engines.items():
        entry = current_engines.get(key)
        label = "/".join(key)
        if entry is None:
            problems.append(f"{label}: configuration missing from benchmark output")
            continue
        if not entry.get("metrics_equal", False):
            problems.append(f"{label}: vectorized metrics no longer equal the scalar oracle")
        problems.extend(
            f"{label}: {problem}"
            for problem in _compare_metrics(entry["metrics"], base_entry["metrics"], rtol)
        )
        problems.append(
            check_floor(entry["speedup"], min_speedup, f"{label}: speedup")
        )
        problems.append(
            check_baseline_ceiling(
                entry["vector_seconds"],
                base_entry["vector_seconds"],
                time_factor,
                f"{label}: vector wall-time",
            )
        )

    stream = current.get("order_stream", {})
    if not stream.get("streams_identical", False):
        problems.append("order stream: batched builder diverged from the per-object one")
    problems.append(
        check_floor(
            stream.get("speedup", 0.0),
            gates.get("min_order_stream_speedup", 2.0),
            "order stream: speedup",
        )
    )

    base_sparse = baseline.get("sparse")
    if base_sparse is not None:
        sparse = current.get("sparse")
        if sparse is None:
            problems.append("sparse: section missing from benchmark output")
        else:
            if not sparse.get("metrics_equal", False):
                problems.append(
                    "sparse: metrics no longer identical to the dense vector engine"
                )
            problems.extend(
                f"sparse: {problem}"
                for problem in _compare_metrics(
                    sparse.get("metrics", {}), base_sparse["metrics"], rtol
                )
            )
            problems.append(
                check_floor(
                    sparse.get("speedup", 0.0),
                    gates.get("min_sparse_speedup", 5.0),
                    "sparse: speedup",
                )
            )
            problems.append(
                check_baseline_ceiling(
                    sparse.get("sparse_seconds", float("inf")),
                    base_sparse["sparse_seconds"],
                    time_factor,
                    "sparse: wall-time",
                )
            )

    base_lifecycle = baseline.get("lifecycle")
    if base_lifecycle is not None:
        lifecycle = current.get("lifecycle")
        if lifecycle is None:
            problems.append("lifecycle: section missing from benchmark output")
        else:
            if not lifecycle.get("metrics_equal", False):
                problems.append(
                    "lifecycle: vectorized metrics no longer equal the scalar oracle"
                )
            problems.extend(
                f"lifecycle: {problem}"
                for problem in _compare_metrics(
                    lifecycle.get("metrics", {}), base_lifecycle["metrics"], rtol
                )
            )
            problems.append(
                check_floor(
                    lifecycle.get("speedup", 0.0),
                    gates.get("min_lifecycle_speedup", 2.0),
                    "lifecycle: speedup",
                )
            )
            problems.append(
                check_baseline_ceiling(
                    lifecycle.get("vector_seconds", float("inf")),
                    base_lifecycle["vector_seconds"],
                    time_factor,
                    "lifecycle: wall-time",
                )
            )
    # The floor/ceiling helpers return None on pass.
    return [problem for problem in problems if problem]


def summarize(current: Dict) -> None:
    """Per-section one-liners printed on every gate run."""
    for entry in current.get("engines", []):
        print(
            f"{entry['policy']}/{entry['matching']}: speedup {entry['speedup']:.2f}x "
            f"(vector {entry['vector_seconds'] * 1e3:.1f}ms), "
            f"metrics equal: {entry['metrics_equal']}"
        )
    sparse = current.get("sparse")
    if sparse is not None:
        print(
            f"sparse large-fleet: speedup {sparse['speedup']:.2f}x "
            f"(sparse {sparse['sparse_seconds']:.2f}s vs dense "
            f"{sparse['dense_seconds']:.2f}s), metrics equal: {sparse['metrics_equal']}"
        )
    lifecycle = current.get("lifecycle")
    if lifecycle is not None:
        print(
            f"lifecycle stress: speedup {lifecycle['speedup']:.2f}x "
            f"(vector {lifecycle['vector_seconds']:.2f}s vs scalar "
            f"{lifecycle['scalar_seconds']:.2f}s), "
            f"cancelled {lifecycle['metrics'].get('cancelled_orders')}, "
            f"metrics equal: {lifecycle['metrics_equal']}"
        )


def main(argv=None) -> int:
    return run_gate_cli(
        "dispatch perf-regression gate", DEFAULT_BASELINE, check, summarize, argv
    )


if __name__ == "__main__":
    sys.exit(main())
