"""CI perf-regression gate for the dispatch engine benchmark.

Compares a freshly emitted ``BENCH_dispatch.json`` (from
``benchmarks/bench_dispatch_engine.py``) against the committed baseline
``benchmarks/baseline_dispatch.json`` and fails (exit code 1) on regression:

* **Correctness** — every configuration must report bit-identical metrics
  between the vectorized and scalar engines, and the metric values must match
  the baseline within ``metrics_rtol`` (they are deterministic functions of
  the scenario seed, so any drift means the engine's semantics changed).
* **Speed** — the vectorized/scalar speedup must stay above
  ``min_speedup`` per configuration.  The ratio is used as the primary gate
  because it is robust to CI hardware differences; an absolute wall-time
  ceiling (``max_vector_seconds_factor`` times the baseline measurement)
  additionally catches pathological slowdowns that hit both engines.
* **Sparse matching** — on the pinned large-fleet stress scenario the sparse
  pipeline must report metrics bit-identical to the dense vector engine
  (``metrics_equal``), metric values matching the baseline within
  ``metrics_rtol``, and a sparse/dense speedup above ``min_sparse_speedup``.
* **Fleet lifecycle** — on the pinned lifecycle stress scenario (two-shift
  2000-driver fleet, 2 surge test days, 6-minute rider patience) the
  vectorized engine must report metrics — including ``cancelled_orders`` —
  bit-identical to the scalar oracle, matching the baseline within
  ``metrics_rtol``, with a speedup above ``min_lifecycle_speedup`` and a
  wall-time ceiling like the engine configurations.

Usage::

    python benchmarks/bench_dispatch_engine.py --output BENCH_dispatch.json
    python benchmarks/check_dispatch_regression.py BENCH_dispatch.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline_dispatch.json"


def _compare_metrics(current: Dict, baseline: Dict, rtol: float) -> List[str]:
    problems = []
    for key, expected in baseline.items():
        actual = current.get(key)
        if actual is None:
            problems.append(f"metric {key!r} missing from benchmark output")
            continue
        if not math.isclose(float(actual), float(expected), rel_tol=rtol, abs_tol=rtol):
            problems.append(
                f"metric {key!r} drifted: baseline {expected!r}, got {actual!r}"
            )
    return problems


def check(current: Dict, baseline: Dict) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = pass)."""
    gates = baseline.get("gates", {})
    min_speedup = float(gates.get("min_speedup", 1.5))
    rtol = float(gates.get("metrics_rtol", 1e-9))
    time_factor = float(gates.get("max_vector_seconds_factor", 5.0))
    problems: List[str] = []

    baseline_engines = {
        (entry["policy"], entry["matching"]): entry for entry in baseline["engines"]
    }
    current_engines = {
        (entry["policy"], entry["matching"]): entry for entry in current.get("engines", [])
    }
    for key, base_entry in baseline_engines.items():
        entry = current_engines.get(key)
        label = "/".join(key)
        if entry is None:
            problems.append(f"{label}: configuration missing from benchmark output")
            continue
        if not entry.get("metrics_equal", False):
            problems.append(f"{label}: vectorized metrics no longer equal the scalar oracle")
        problems.extend(
            f"{label}: {problem}"
            for problem in _compare_metrics(entry["metrics"], base_entry["metrics"], rtol)
        )
        speedup = float(entry["speedup"])
        if speedup < min_speedup:
            problems.append(
                f"{label}: speedup {speedup:.2f}x below the {min_speedup:.2f}x floor"
            )
        ceiling = float(base_entry["vector_seconds"]) * time_factor
        if float(entry["vector_seconds"]) > ceiling:
            problems.append(
                f"{label}: vector wall-time {entry['vector_seconds']:.3f}s exceeds "
                f"{ceiling:.3f}s ({time_factor:g}x the committed baseline)"
            )

    stream = current.get("order_stream", {})
    if not stream.get("streams_identical", False):
        problems.append("order stream: batched builder diverged from the per-object one")
    stream_floor = float(gates.get("min_order_stream_speedup", 2.0))
    if float(stream.get("speedup", 0.0)) < stream_floor:
        problems.append(
            f"order stream: speedup {stream.get('speedup', 0.0):.2f}x below "
            f"the {stream_floor:.2f}x floor"
        )

    base_sparse = baseline.get("sparse")
    if base_sparse is not None:
        sparse = current.get("sparse")
        if sparse is None:
            problems.append("sparse: section missing from benchmark output")
        else:
            if not sparse.get("metrics_equal", False):
                problems.append(
                    "sparse: metrics no longer identical to the dense vector engine"
                )
            problems.extend(
                f"sparse: {problem}"
                for problem in _compare_metrics(
                    sparse.get("metrics", {}), base_sparse["metrics"], rtol
                )
            )
            sparse_floor = float(gates.get("min_sparse_speedup", 5.0))
            if float(sparse.get("speedup", 0.0)) < sparse_floor:
                problems.append(
                    f"sparse: speedup {sparse.get('speedup', 0.0):.2f}x below "
                    f"the {sparse_floor:.2f}x floor"
                )
            ceiling = float(base_sparse["sparse_seconds"]) * time_factor
            if float(sparse.get("sparse_seconds", float("inf"))) > ceiling:
                problems.append(
                    f"sparse: wall-time {sparse['sparse_seconds']:.3f}s exceeds "
                    f"{ceiling:.3f}s ({time_factor:g}x the committed baseline)"
                )

    base_lifecycle = baseline.get("lifecycle")
    if base_lifecycle is not None:
        lifecycle = current.get("lifecycle")
        if lifecycle is None:
            problems.append("lifecycle: section missing from benchmark output")
        else:
            if not lifecycle.get("metrics_equal", False):
                problems.append(
                    "lifecycle: vectorized metrics no longer equal the scalar oracle"
                )
            problems.extend(
                f"lifecycle: {problem}"
                for problem in _compare_metrics(
                    lifecycle.get("metrics", {}), base_lifecycle["metrics"], rtol
                )
            )
            lifecycle_floor = float(gates.get("min_lifecycle_speedup", 2.0))
            if float(lifecycle.get("speedup", 0.0)) < lifecycle_floor:
                problems.append(
                    f"lifecycle: speedup {lifecycle.get('speedup', 0.0):.2f}x below "
                    f"the {lifecycle_floor:.2f}x floor"
                )
            ceiling = float(base_lifecycle["vector_seconds"]) * time_factor
            if float(lifecycle.get("vector_seconds", float("inf"))) > ceiling:
                problems.append(
                    f"lifecycle: wall-time {lifecycle['vector_seconds']:.3f}s exceeds "
                    f"{ceiling:.3f}s ({time_factor:g}x the committed baseline)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="dispatch perf-regression gate")
    parser.add_argument("benchmark", help="freshly emitted BENCH_dispatch.json")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: benchmarks/baseline_dispatch.json)",
    )
    args = parser.parse_args(argv)
    current = json.loads(Path(args.benchmark).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    problems = check(current, baseline)
    for entry in current.get("engines", []):
        print(
            f"{entry['policy']}/{entry['matching']}: speedup {entry['speedup']:.2f}x "
            f"(vector {entry['vector_seconds'] * 1e3:.1f}ms), "
            f"metrics equal: {entry['metrics_equal']}"
        )
    sparse = current.get("sparse")
    if sparse is not None:
        print(
            f"sparse large-fleet: speedup {sparse['speedup']:.2f}x "
            f"(sparse {sparse['sparse_seconds']:.2f}s vs dense "
            f"{sparse['dense_seconds']:.2f}s), metrics equal: {sparse['metrics_equal']}"
        )
    lifecycle = current.get("lifecycle")
    if lifecycle is not None:
        print(
            f"lifecycle stress: speedup {lifecycle['speedup']:.2f}x "
            f"(vector {lifecycle['vector_seconds']:.2f}s vs scalar "
            f"{lifecycle['scalar_seconds']:.2f}s), "
            f"cancelled {lifecycle['metrics'].get('cancelled_orders')}, "
            f"metrics equal: {lifecycle['metrics_equal']}"
        )
    if problems:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
