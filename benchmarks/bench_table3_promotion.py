"""Table III — improvement from selecting the optimal grid size.

Paper result: with DeepST predictions on NYC, POLAR improves by 13.6% served
orders / 8.97% revenue when moving from its original 50x50 grid to the tuned
16x16 grid; LS and DAIF improve more modestly because their original grids are
already close to the optimum.
"""

from conftest import run_once

from repro.experiments.case_study import table3_promotion
from repro.experiments.reporting import format_table


def test_table3_promotion(benchmark, context, bench_sides):
    rows_data = run_once(
        benchmark,
        table3_promotion,
        context,
        "nyc_like",
        "deepst",
        bench_sides,
        True,
    )
    rows = [
        [
            row.metric,
            row.algorithm,
            f"{row.optimal_side}x{row.optimal_side}",
            f"{row.original_side}x{row.original_side}",
            round(row.optimal_value, 2),
            round(row.original_value, 2),
            f"{100 * row.improvement_ratio:.2f}%",
        ]
        for row in rows_data
    ]
    print()
    print(
        format_table(
            ["metric", "algorithm", "optimal n", "original n", "optimal", "original", "improvement"],
            rows,
            title="Table III: promotion of the prediction-based algorithms",
        )
    )
    # The tuned grid size never hurts, and POLAR (whose original grid is the
    # farthest from the optimum) gains the most on served orders.
    polar_gain = next(
        row.improvement_ratio
        for row in rows_data
        if row.algorithm == "polar" and row.metric == "served_orders"
    )
    ls_gain = next(
        row.improvement_ratio
        for row in rows_data
        if row.algorithm == "ls" and row.metric == "served_orders"
    )
    assert polar_gain >= -1e-9
    assert ls_gain >= -1e-9
    assert all(row.improvement_ratio >= -1e-9 for row in rows_data)
