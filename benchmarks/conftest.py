"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure of the paper (see DESIGN.md for
the index) at a configurable scale.  The profile defaults to ``tiny`` so that
``pytest benchmarks/ --benchmark-only`` completes in minutes; set the
``GRIDTUNER_BENCH_PROFILE`` environment variable to ``small`` (or ``paper``)
for larger runs.

Benchmarks print the reproduced series as text tables; those printouts are the
data recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.context import ExperimentContext  # noqa: E402


def _profile_name() -> str:
    return os.environ.get("GRIDTUNER_BENCH_PROFILE", "tiny")


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Experiment context shared by all benchmarks (datasets built once)."""
    return ExperimentContext.from_profile(_profile_name())


@pytest.fixture(scope="session")
def bench_sides(context) -> list[int]:
    """Candidate MGrid sides swept by the error-curve and case-study benches."""
    return list(context.config.mgrid_sides)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
