"""Figure 6 — task assignment on the NYC-like city: served orders and revenue vs n.

Paper shape: with predicted demand, POLAR's served orders and LS's revenue rise
then fall as ``n`` grows (tracking the real error); with the real order data
the performance does not degrade at large ``n``.
"""

from conftest import run_once

from repro.experiments.case_study import run_task_assignment
from repro.experiments.reporting import format_table

CITY = "nyc_like"


def test_fig6_task_assignment_nyc(benchmark, context, bench_sides):
    def run_all():
        results = {}
        for dispatcher in ("polar", "ls"):
            for model in ("deepst", "dmvst_net", "real_data"):
                results[(dispatcher, model)] = run_task_assignment(
                    context, CITY, dispatcher, model, sides=bench_sides, surrogate=True
                )
        return results

    results = run_once(benchmark, run_all)
    rows = []
    for (dispatcher, model), points in results.items():
        for point in points:
            rows.append(
                [
                    dispatcher,
                    model,
                    point.num_mgrids,
                    point.metrics.served_orders,
                    round(point.metrics.total_revenue, 1),
                ]
            )
    print()
    print(
        format_table(
            ["dispatcher", "prediction", "n", "served orders", "total revenue"],
            rows,
            title=f"Figure 6: task assignment vs n ({CITY})",
        )
    )
    for (dispatcher, model), points in results.items():
        served = [p.metrics.served_orders for p in points]
        assert all(s >= 0 for s in served)
        assert points[0].metrics.total_orders == points[-1].metrics.total_orders
