"""Figure 19 — effect of the training-set size on the tuned real error.

Paper shape: both too little and too much training data hurt; about four weeks
is the sweet spot.  At benchmark scale the generated history is shorter, so the
benchmark sweeps the available window and reports the tuned real error per
training length.
"""

from conftest import run_once

from repro.experiments.dataset_size import dataset_size_sweep
from repro.experiments.reporting import format_table


def test_fig19_dataset_size(benchmark, context):
    max_weeks = max(1, len(context.dataset("nyc_like").split.train_days) // 7)
    weeks = tuple(range(1, max_weeks + 1))
    points = run_once(
        benchmark,
        dataset_size_sweep,
        context,
        "nyc_like",
        "deepst",
        weeks,
        True,
        False,
    )
    rows = [
        [
            p.weeks,
            p.training_days,
            p.optimal_side,
            round(p.real_error, 2),
            round(p.upper_bound, 2),
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["weeks", "training days", "optimal sqrt(n)", "real error", "upper bound"],
            rows,
            title="Figure 19: effect of the training-set size (NYC-like)",
        )
    )
    assert all(p.real_error >= 0 for p in points)
    assert all(p.real_error <= p.upper_bound + 1e-9 for p in points)
    # More data never leaves the tuner with less history than a shorter window.
    assert points[-1].training_days >= points[0].training_days
