"""Figure 10 — spatial distribution of test-day orders in the three cities.

Paper content: per-city heat maps of order pick-ups (NYC concentrated in a
Manhattan-like strip, Chengdu ring-shaped, Xi'an small and nearly uniform).
The benchmark prints per-city concentration statistics that summarise the same
information and asserts the intended ordering.
"""

from conftest import run_once

from repro.analysis.distributions import spatial_concentration_summary
from repro.experiments.context import CITIES
from repro.experiments.reporting import format_table


def test_fig10_order_distributions(benchmark, context):
    summaries = run_once(
        benchmark,
        lambda: {
            city: spatial_concentration_summary(context.dataset(city), resolution=16)
            for city in CITIES
        },
    )
    rows = [
        [
            summary.city,
            summary.total_test_orders,
            round(summary.gini, 3),
            f"{100 * summary.top_decile_share:.1f}%",
        ]
        for summary in summaries.values()
    ]
    print()
    print(
        format_table(
            ["city", "test-day orders", "gini", "top-decile share"],
            rows,
            title="Figure 10: spatial concentration of test-day orders",
        )
    )
    assert summaries["nyc_like"].gini > summaries["chengdu_like"].gini
    assert summaries["chengdu_like"].gini > summaries["xian_like"].gini
    assert (
        summaries["nyc_like"].total_test_orders
        > summaries["chengdu_like"].total_test_orders
        > summaries["xian_like"].total_test_orders
    )
