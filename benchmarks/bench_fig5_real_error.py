"""Figure 5 — real error and its upper bound vs n, per city and model.

Paper shape: both the real error and its upper bound first fall then rise as
``n`` grows; the upper bound always dominates the real error; a more accurate
model reaches a smaller real error and a larger optimal ``n``.
"""

from conftest import run_once

from repro.experiments.error_curves import optimal_side_from_curve, real_error_curve
from repro.experiments.reporting import format_table


def _curve(context, city, model, sides):
    return real_error_curve(context, city, model, sides=sides, surrogate=True)


def test_fig5_real_error_and_upper_bound(benchmark, context, bench_sides):
    results = run_once(
        benchmark,
        lambda: {
            (city, model): _curve(context, city, model, bench_sides)
            for city in ("nyc_like", "chengdu_like", "xian_like")
            for model in ("mlp", "dmvst_net")
        },
    )
    rows = []
    for (city, model), points in results.items():
        for point in points:
            rows.append(
                [
                    city,
                    model,
                    point.num_mgrids,
                    point.real_error,
                    point.empirical_upper_bound,
                    point.analytic_upper_bound,
                ]
            )
    print()
    print(
        format_table(
            ["city", "model", "n", "real error", "empirical bound", "analytic bound"],
            rows,
            title="Figure 5: real error vs n",
        )
    )
    for (city, model), points in results.items():
        for point in points:
            assert point.real_error <= point.empirical_upper_bound + 1e-9
    # Better model => smaller real error at the shared optimal region.
    for city in ("nyc_like", "chengdu_like", "xian_like"):
        weak = min(p.real_error for p in results[(city, "mlp")])
        strong = min(p.real_error for p in results[(city, "dmvst_net")])
        assert strong <= weak
    # Better model => optimal n at least as large (paper Section V-C).
    weak_side = optimal_side_from_curve(results[("nyc_like", "mlp")])
    strong_side = optimal_side_from_curve(results[("nyc_like", "dmvst_net")])
    assert strong_side >= weak_side
