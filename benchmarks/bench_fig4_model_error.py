"""Figure 4 — total model error vs the number of MGrids, per prediction model.

Paper shape: model error increases with ``n``; MLP > DeepST > DMVST-Net.
The benchmark uses the calibrated surrogates (see DESIGN.md) so the full sweep
stays tractable; switch ``surrogate=False`` to train the NumPy networks.
"""

from conftest import run_once

from repro.experiments.context import MODELS
from repro.experiments.error_curves import model_error_curve
from repro.experiments.reporting import format_table


def test_fig4_model_error_curves(benchmark, context, bench_sides):
    curves = run_once(
        benchmark,
        model_error_curve,
        context,
        "nyc_like",
        MODELS,
        bench_sides,
        True,
    )
    rows = []
    for model, points in curves.items():
        for point in points:
            rows.append([model, point.mgrid_side, point.num_mgrids, point.value])
    print()
    print(
        format_table(
            ["model", "sqrt(n)", "n", "model error (n*MAE)"],
            rows,
            title="Figure 4: model error vs n (NYC-like)",
        )
    )
    for model, points in curves.items():
        values = [point.value for point in points]
        assert values == sorted(values), model
    final = {model: points[-1].value for model, points in curves.items()}
    assert final["mlp"] > final["deepst"] > final["dmvst_net"]
