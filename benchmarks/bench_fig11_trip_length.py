"""Figure 11 — distribution of trip lengths in the three cities.

Paper content: Chengdu has a broad trip-length distribution with a non-trivial
share of long trips; NYC trips are mostly under 15 km (Manhattan-centred);
Xi'an trips are mostly under 10 km because the study area is small.
"""

from conftest import run_once

from repro.analysis.distributions import trip_length_histogram
from repro.experiments.context import CITIES
from repro.experiments.reporting import format_table

BINS = (0, 2, 5, 10, 15, 25, 45, 1000)


def test_fig11_trip_length_distributions(benchmark, context):
    histograms = run_once(
        benchmark,
        lambda: {
            city: trip_length_histogram(context.dataset(city), bin_edges_km=BINS)
            for city in CITIES
        },
    )
    rows = []
    for city, histogram in histograms.items():
        total = sum(histogram.values())
        for label, count in histogram.items():
            rows.append([city, label, count, f"{100 * count / max(total, 1):.1f}%"])
    print()
    print(
        format_table(
            ["city", "trip length", "trips", "share"],
            rows,
            title="Figure 11: trip-length distributions",
        )
    )

    def share_above(city, km):
        histogram = histograms[city]
        total = sum(histogram.values())
        above = sum(
            count for label, count in histogram.items()
            if label.startswith(">") or float(label.split("-")[0]) >= km
        )
        return above / max(total, 1)

    # NYC trips are mostly short; Chengdu has the heaviest long-trip tail.
    assert share_above("nyc_like", 15) < 0.2
    assert share_above("chengdu_like", 15) > share_above("xian_like", 15)
    assert share_above("xian_like", 10) < 0.1
