"""Ablation — single compromise grid vs per-slot tuned grids (Figure 18 follow-up).

The paper tunes one grid size for the whole day even though the per-slot optima
differ (Figure 18).  This ablation quantifies what the compromise costs: the
summed upper bound across the case-study slots for (a) the per-slot optimal
grids and (b) the best single compromise grid.  The per-slot grids are never
worse by construction; the printed gap shows how much head-room the paper's
single-grid deployment leaves on the synthetic cities.
"""

from conftest import run_once

from repro.core.slotwise import SlotwiseGridTuner
from repro.experiments.reporting import format_table


def test_ablation_slotwise_vs_single_grid(benchmark, context):
    dataset = context.dataset("nyc_like")
    tuner = SlotwiseGridTuner(
        dataset,
        context.factory("deepst", surrogate=True),
        hgrid_budget=context.config.hgrid_budget,
        algorithm="brute_force",
    )
    slots = context.config.case_study_slots

    report = run_once(benchmark, tuner.tune, slots)

    per_slot_total = sum(result.best_value for result in report.results)
    rows = [
        [result.slot, f"{result.best_side}x{result.best_side}", round(result.best_value, 2)]
        for result in report.results
    ]
    rows.append(
        [
            "compromise",
            f"{report.compromise_side}x{report.compromise_side}",
            round(report.compromise_value, 2),
        ]
    )
    print()
    print(
        format_table(
            ["slot", "selected n", "upper bound"],
            rows,
            title="Ablation: per-slot tuning vs a single compromise grid",
        )
    )
    print(
        f"per-slot total bound = {per_slot_total:.2f}, "
        f"compromise total bound = {report.compromise_value:.2f}"
    )
    assert per_slot_total <= report.compromise_value + 1e-9
    assert report.compromise_side in {result.best_side for result in report.results}
