"""Figure 3 — total expression error vs the number of MGrids, per city.

Paper shape: the expression error decreases as ``n`` grows in every city, and
NYC > Chengdu > Xi'an at the same ``n``.
"""

from conftest import run_once

from repro.experiments.context import CITIES
from repro.experiments.error_curves import expression_error_curve
from repro.experiments.reporting import format_table


def test_fig3_expression_error_curves(benchmark, context, bench_sides):
    curves = run_once(
        benchmark, expression_error_curve, context, CITIES, bench_sides
    )
    rows = []
    for city, points in curves.items():
        for point in points:
            rows.append([city, point.mgrid_side, point.num_mgrids, point.value])
    print()
    print(
        format_table(
            ["city", "sqrt(n)", "n", "expression error"],
            rows,
            title="Figure 3: expression error vs n",
        )
    )
    for city, points in curves.items():
        values = [point.value for point in points]
        assert values == sorted(values, reverse=True), city
