"""Figure 18 — distribution of the optimal n across the time slots of a day.

Paper shape: the optimal sqrt(n) concentrates around a modal value (17 in the
paper's NYC setting) with moderate spread across the day, because the demand
pattern — and therefore the expression error — changes from slot to slot.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.search_eval import optimal_n_distribution


def test_fig18_optimal_n_distribution(benchmark, context):
    distribution = run_once(
        benchmark,
        optimal_n_distribution,
        context,
        "nyc_like",
        "deepst",
        context.config.case_study_slots,
        True,
    )
    total_slots = sum(distribution.values())
    rows = [
        [side, side * side, count, f"{100 * count / total_slots:.0f}%"]
        for side, count in distribution.items()
    ]
    print()
    print(
        format_table(
            ["sqrt(n)", "n", "slots", "share"],
            rows,
            title="Figure 18: distribution of the optimal n across time slots",
        )
    )
    assert total_slots == len(context.config.case_study_slots)
    budget_side = int(round(context.config.hgrid_budget**0.5))
    assert all(2 <= side <= budget_side for side in distribution)
