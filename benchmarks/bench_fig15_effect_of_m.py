"""Figure 15 — effect of m (HGrids per MGrid) with n fixed.

Paper shape: as m grows (finer HGrids) the expression error and the real error
increase while the model error stays flat, because the model error lives at
MGrid level; past the homogeneity point the increase mostly reflects noisy
alpha estimates.
"""

from conftest import run_once

from repro.experiments.homogeneity_exp import figure15_effect_of_m
from repro.experiments.reporting import format_table

HGRID_SIDES = (1, 2, 4, 8)


def test_fig15_effect_of_m(benchmark, context):
    points = run_once(
        benchmark,
        figure15_effect_of_m,
        context,
        "nyc_like",
        4,
        HGRID_SIDES,
        "deepst",
        True,
    )
    rows = [
        [
            p.hgrid_side,
            p.hgrids_per_mgrid,
            round(p.expression_error, 2),
            round(p.model_error, 2),
            round(p.real_error, 2),
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["sqrt(m)", "m", "expression error", "model error", "real error"],
            rows,
            title="Figure 15: effect of m at fixed n = 4x4 (NYC-like)",
        )
    )
    expression = [p.expression_error for p in points]
    real = [p.real_error for p in points]
    model = [p.model_error for p in points]
    assert expression == sorted(expression)
    assert real == sorted(real)
    assert abs(model[0] - model[-1]) / max(model[0], 1e-9) < 1e-6
