"""Ablation — expression-error calculator used inside the tuner.

DESIGN.md calls out the choice between the exact O(mK) calculator
(Algorithm 2), the Gaussian approximation and the auto mode that switches
between them by MGrid mean.  This ablation verifies, on a real alpha grid from
the NYC-like city, that the three modes agree on the total expression error to
within a fraction of a percent while the Gaussian/auto modes are substantially
cheaper — which is why "auto" is the library default.
"""

import time

from conftest import run_once

from repro.core.expression import total_expression_error
from repro.core.grid import GridLayout
from repro.experiments.reporting import format_table


def test_ablation_expression_method(benchmark, context):
    dataset = context.dataset("nyc_like")
    layout = GridLayout.for_ogss(16, context.config.hgrid_budget)
    alpha = dataset.alpha(layout.fine_resolution, slot=context.config.alpha_slot)

    def run_all():
        results = {}
        for method in ("algorithm2", "auto", "gaussian"):
            start = time.perf_counter()
            value = total_expression_error(alpha, layout, method=method)
            results[method] = (value, time.perf_counter() - start)
        return results

    results = run_once(benchmark, run_all)
    rows = [
        [method, round(value, 4), f"{1e3 * seconds:.2f} ms"]
        for method, (value, seconds) in results.items()
    ]
    print()
    print(
        format_table(
            ["method", "total expression error", "time"],
            rows,
            title="Ablation: expression-error calculator inside the tuner",
        )
    )
    exact_value, exact_seconds = results["algorithm2"]
    # "auto" must track the exact value closely: it only switches to the
    # Gaussian form for busy MGrids where the approximation is accurate.
    auto_value, _ = results["auto"]
    assert abs(auto_value - exact_value) / max(exact_value, 1e-9) < 0.05
    # The pure Gaussian mode is allowed to drift on sparse grids (tiny Poisson
    # means) — that drift is exactly why "auto" exists — but it must stay in
    # the same ballpark and must not be slower than the exact calculator.
    gaussian_value, gaussian_seconds = results["gaussian"]
    assert abs(gaussian_value - exact_value) / max(exact_value, 1e-9) < 0.5
    assert gaussian_seconds <= exact_seconds * 2.0
