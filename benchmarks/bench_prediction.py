"""Prediction engine benchmark: strided/buffered conv training vs the seed loops.

Trains the pinned reference network (a DeepST-style conv stack at MGrid
resolution 32 — the upper end of the paper's candidate grids) in three modes:

* ``seed`` — the seed's exact conv pipeline: per-offset loop unfolds, einsum
  weight reduction, scatter-add ``col2im`` backward (``layers.seed_mode``).
* ``loop-unfold`` — the production GEMM/gather backward fed by the loop
  unfold (``layers.loop_unfold``).
* ``production`` — the strided ``sliding_window_view`` unfold with reusable
  buffers plus the GEMM/gather backward (the default engine).

The benchmark asserts three properties the CI gate then enforces:

1. **Unfold equivalence** — ``loop-unfold`` and ``production`` differ only in
   the unfold implementation, whose column views are bit-identical and
   layout-identical, so their training histories and final forward outputs
   must match bit-for-bit.
2. **Forward equivalence vs the seed** — on identical weights the production
   forward pass is bit-identical to the seed's (the strided unfold returns
   the exact memory layout the seed's reshape produced, keeping the BLAS
   matmul on the same code path).
3. **Speed** — production training must beat the seed pipeline by the gated
   factor (``min_training_speedup`` in ``baseline_prediction.json``).  The
   seed backward's arithmetic is mathematically identical but associates
   floating-point sums differently, so its *training history* is compared
   within ``history_rtol`` rather than bitwise.

It additionally reports the optional ``float32`` training mode (informational
speedup) and checks that the prediction suite cache replays byte-identically
across reruns and across the thread/process executors.

Run modes
---------
* ``python benchmarks/bench_prediction.py --output BENCH_prediction.json``
  emits the machine-readable result consumed by
  ``benchmarks/check_prediction_regression.py`` (the CI perf gate).
* ``pytest benchmarks/bench_prediction.py`` runs a reduced measurement as a
  smoke test under pytest-benchmark timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.prediction import layers  # noqa: E402
from repro.prediction.deepst import DeepSTPredictor  # noqa: E402
from repro.prediction.network import Trainer  # noqa: E402
from repro.sweep.prediction import (  # noqa: E402
    PredictionSuiteRunner,
    predictor_scenarios,
)

#: Pinned reference training configuration.  Resolution 32 is the largest
#: MGrid side of the ``small`` profile; 512 samples x 3 epochs keeps the
#: seed-mode baseline measurable in CI without dominating the job.
REFERENCE = {
    "resolution": 32,
    "samples": 512,
    "val_samples": 64,
    "batch_size": 64,
    "epochs": 3,
    "filters": 12,
    "closeness": 8,
    "period": 2,
    "data_seed": 123,
    "network_seed": 0,
    "trainer_seed": 0,
}

#: Timing repetitions per mode (the minimum is reported; modes are
#: interleaved across repeats to decorrelate host noise).
REPEATS = 3


def _reference_data(config: Dict) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(config["data_seed"])
    channels = config["closeness"] + config["period"]
    res = config["resolution"]
    return {
        "inputs": rng.normal(size=(config["samples"], channels, res, res)),
        "targets": rng.normal(size=(config["samples"], res, res)),
        "val_inputs": rng.normal(size=(config["val_samples"], channels, res, res)),
        "val_targets": rng.normal(size=(config["val_samples"], res, res)),
    }


def _build_network(config: Dict):
    predictor = DeepSTPredictor(
        filters=config["filters"],
        period=config["period"],
        closeness=config["closeness"],
        seed=config["network_seed"],
    )
    return predictor.build_network(config["resolution"])


def _train(config: Dict, data: Dict, mode: str, dtype: Optional[str] = None):
    """One full training run in the requested mode; returns (seconds, history, out)."""
    network = _build_network(config)
    trainer = Trainer(
        network,
        epochs=config["epochs"],
        batch_size=config["batch_size"],
        seed=config["trainer_seed"],
        patience=None,
        dtype=dtype,
    )
    previous_unfold = layers.set_loop_unfold(mode in ("loop", "seed"))
    previous_backward = layers.set_legacy_backward(mode == "seed")
    try:
        start = time.perf_counter()
        history = trainer.fit(
            data["inputs"], data["targets"], data["val_inputs"], data["val_targets"]
        )
        seconds = time.perf_counter() - start
        final = network.forward(data["val_inputs"], training=False)
    finally:
        layers.set_loop_unfold(previous_unfold)
        layers.set_legacy_backward(previous_backward)
    return seconds, history, final


def _forward_identical_to_seed(config: Dict, data: Dict) -> bool:
    """Untrained forward pass: production vs seed mode on identical weights."""
    network = _build_network(config)
    with layers.seed_mode():
        seed_out = network.forward(data["val_inputs"], training=False)
    production_out = network.forward(data["val_inputs"], training=False)
    return bool((seed_out == production_out).all())


def _history_drift(a, b) -> float:
    """Maximum relative difference between two training histories."""
    drift = 0.0
    for series_a, series_b in ((a.train_loss, b.train_loss), (a.val_mae, b.val_mae)):
        for x, y in zip(series_a, series_b):
            denominator = max(abs(x), abs(y), 1e-300)
            drift = max(drift, abs(x - y) / denominator)
    return drift


def _suite_cache_section() -> Dict:
    """Prediction suite byte-stability across reruns and executors."""
    scenarios = predictor_scenarios(
        ["xian_like"],
        models=["historical_average", "mlp"],
        resolutions=[4],
        seeds=[7],
        scale=0.003,
        num_days=6,
        hyper=(("epochs", 3), ("max_train_samples", 64)),
    )
    with tempfile.TemporaryDirectory() as thread_dir, tempfile.TemporaryDirectory() as process_dir:
        start = time.perf_counter()
        PredictionSuiteRunner(scenarios, cache_dir=thread_dir).run()
        cold_seconds = time.perf_counter() - start
        first = {p.name: p.read_bytes() for p in Path(thread_dir).glob("*.json")}
        start = time.perf_counter()
        replay = PredictionSuiteRunner(scenarios, cache_dir=thread_dir).run()
        replay_seconds = time.perf_counter() - start
        second = {p.name: p.read_bytes() for p in Path(thread_dir).glob("*.json")}
        PredictionSuiteRunner(
            scenarios, cache_dir=process_dir, executor="process", max_workers=2
        ).run()
        process = {p.name: p.read_bytes() for p in Path(process_dir).glob("*.json")}
    return {
        "scenarios": len(scenarios),
        "cold_seconds": cold_seconds,
        "replay_seconds": replay_seconds,
        "replay_hits": replay.cache_hits,
        "rerun_bytes_identical": first == second and len(first) == len(scenarios),
        "executor_bytes_identical": first == process,
    }


def run_benchmark(repeats: int = REPEATS, config: Optional[Dict] = None) -> Dict:
    """Measure every mode and return the BENCH_prediction payload."""
    config = dict(REFERENCE if config is None else config)
    data = _reference_data(config)

    # Interleave the timed modes across repeats so a transient slowdown of
    # the host (the gate runs on shared CI hardware) cannot hit one mode's
    # entire sample; the minimum per mode is reported.
    runs: Dict[str, List] = {"seed": [], "loop": [], "new": []}
    for _ in range(repeats):
        for mode in ("seed", "loop", "new"):
            runs[mode].append(_train(config, data, mode))
    seed_seconds, seed_history, _ = min(runs["seed"], key=lambda r: r[0])
    loop_seconds, loop_history, loop_final = min(runs["loop"], key=lambda r: r[0])
    production_seconds, production_history, production_final = min(
        runs["new"], key=lambda r: r[0]
    )
    float32_seconds, float32_history, _ = _train(config, data, "new", dtype="float32")

    unfold_identical = (
        production_history.train_loss == loop_history.train_loss
        and production_history.val_mae == loop_history.val_mae
        and bool((production_final == loop_final).all())
    )
    return {
        "schema": 1,
        "reference": (
            f"DeepST-style stack at {config['resolution']}x{config['resolution']}, "
            f"{config['samples']} samples x {config['epochs']} epochs"
        ),
        "config": config,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "training": {
            "seed_seconds": seed_seconds,
            "loop_unfold_seconds": loop_seconds,
            "production_seconds": production_seconds,
            "speedup": seed_seconds / production_seconds,
            "unfold_swap_identical": unfold_identical,
            "forward_identical_to_seed": _forward_identical_to_seed(config, data),
            "seed_history_drift": _history_drift(seed_history, production_history),
            "final_train_loss": production_history.train_loss[-1],
            "final_val_mae": production_history.val_mae[-1],
            "best_epoch": production_history.best_epoch,
        },
        "float32": {
            "seconds": float32_seconds,
            "speedup_vs_float64": production_seconds / float32_seconds,
            "loss_decreased": float32_history.train_loss[-1]
            < float32_history.train_loss[0],
        },
        "suite_cache": _suite_cache_section(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="prediction engine benchmark")
    parser.add_argument(
        "--output",
        default="BENCH_prediction.json",
        help="path of the emitted JSON (default: BENCH_prediction.json)",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    training = payload["training"]
    print(
        f"training ({payload['reference']}): "
        f"seed {training['seed_seconds']:.2f}s, "
        f"loop-unfold {training['loop_unfold_seconds']:.2f}s, "
        f"production {training['production_seconds']:.2f}s, "
        f"speedup {training['speedup']:.2f}x"
    )
    print(
        f"unfold swap identical: {training['unfold_swap_identical']}, "
        f"forward == seed: {training['forward_identical_to_seed']}, "
        f"seed history drift: {training['seed_history_drift']:.2e}"
    )
    float32 = payload["float32"]
    print(
        f"float32: {float32['seconds']:.2f}s "
        f"({float32['speedup_vs_float64']:.2f}x vs float64), "
        f"loss decreased: {float32['loss_decreased']}"
    )
    suite = payload["suite_cache"]
    print(
        f"suite cache: cold {suite['cold_seconds']:.2f}s, replay "
        f"{suite['replay_seconds']:.2f}s ({suite['replay_hits']} hits), "
        f"rerun bytes identical: {suite['rerun_bytes_identical']}, "
        f"executor bytes identical: {suite['executor_bytes_identical']}"
    )
    print(f"wrote {args.output}")
    ok = (
        training["unfold_swap_identical"]
        and training["forward_identical_to_seed"]
        and suite["rerun_bytes_identical"]
        and suite["executor_bytes_identical"]
    )
    if not ok:
        print("ERROR: prediction engine equivalence violated", file=sys.stderr)
        return 1
    return 0


def test_prediction_engine_speedup(benchmark):
    """Pytest smoke: production training beats the seed pipeline, equivalences hold."""
    from conftest import run_once

    smoke_config = dict(REFERENCE, samples=128, epochs=2, resolution=16)
    payload = run_once(benchmark, run_benchmark, repeats=1, config=smoke_config)
    training = payload["training"]
    assert training["unfold_swap_identical"], training
    assert training["forward_identical_to_seed"], training
    assert training["speedup"] > 1.0, training
    assert training["seed_history_drift"] < 1e-6, training
    assert payload["suite_cache"]["rerun_bytes_identical"]
    assert payload["suite_cache"]["executor_bytes_identical"]


def test_reference_config_is_pinned():
    """The gate's reference profile stays pinned (baseline depends on it)."""
    assert REFERENCE["resolution"] == 32
    assert REFERENCE["samples"] == 512
    assert REFERENCE["epochs"] == 3
    assert REFERENCE["batch_size"] == 64
    assert REFERENCE["filters"] == 12
    assert REFERENCE["closeness"] + REFERENCE["period"] == 10


if __name__ == "__main__":
    sys.exit(main())
