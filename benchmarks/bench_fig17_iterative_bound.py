"""Figure 17 — effect of the Iterative Method's search bound b.

Paper shape: a larger bound raises the probability of finding the global
optimum but costs more objective evaluations.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.search_eval import iterative_bound_sweep

BOUNDS = (1, 2, 3, 4)


def test_fig17_iterative_bound(benchmark, context):
    points = run_once(
        benchmark,
        iterative_bound_sweep,
        context,
        "nyc_like",
        "deepst",
        BOUNDS,
        context.config.case_study_slots,
        True,
    )
    rows = [
        [
            p.bound,
            f"{100 * p.probability_optimal:.1f}%",
            round(p.mean_evaluations, 1),
            round(p.cost_seconds, 3),
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["bound b", "probability optimal", "mean evaluations", "cost (s)"],
            rows,
            title="Figure 17: effect of the Iterative Method's bound",
        )
    )
    # More exploration with a larger bound...
    assert points[-1].mean_evaluations >= points[0].mean_evaluations
    # ...and at least as high a chance of hitting the global optimum.
    assert points[-1].probability_optimal >= points[0].probability_optimal - 1e-9
