"""CI service-gate: throughput floor, latency ceilings, replay equality.

Compares a freshly emitted ``BENCH_service.json`` (from
``benchmarks/bench_service.py``) against the committed baseline
``benchmarks/baseline_service.json`` and fails (exit code 1) on regression:

* **Correctness** — the ingest-log replay must reproduce the live run's
  metrics bit-for-bit (``replay_equal``), and the metric values must match
  the baseline within ``metrics_rtol``: they are deterministic functions of
  the scenario seed — independent of offered rate, batching cadence and
  host speed — so any drift means the engine or service semantics changed.
* **Throughput** — sustained admitted orders/second must stay above
  ``min_orders_per_sec``.  The floor sits far below the offered rate so CI
  hardware jitter cannot trip it, but an injected match-loop stall does.
* **Latency** — admission→assignment p50/p99 must stay below the absolute
  ``max_p50_ms``/``max_p99_ms`` ceilings.  These are generous against real
  hardware (double-digit milliseconds measured) yet orders of magnitude
  below what a stalled match loop produces.
* **Admission** — the benchmark runs unbounded, so backpressure shedding
  (``max_shed_orders``, default 0) and client retries
  (``max_client_retries``, default 0) are hard ceilings, and
  ``admitted + shed`` must equal the offered count exactly.

Usage::

    python benchmarks/bench_service.py --output BENCH_service.json
    python benchmarks/check_service_regression.py BENCH_service.json
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

_BENCHMARKS = Path(__file__).resolve().parent
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from gatelib import check_ceiling, check_floor, compare_metrics, run_gate_cli  # noqa: E402

DEFAULT_BASELINE = _BENCHMARKS / "baseline_service.json"


def check(current: Dict, baseline: Dict) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = pass)."""
    gates = baseline.get("gates", {})
    rtol = float(gates.get("metrics_rtol", 1e-9))
    problems: List[str] = []

    service = current.get("service")
    if service is None:
        return ["service section missing from benchmark output"]

    if gates.get("require_replay_equal", True) and not current.get(
        "replay_equal", False
    ):
        problems.append(
            "ingest-log replay no longer reproduces the live metrics bit-for-bit"
        )
    problems.extend(
        compare_metrics(current.get("metrics", {}), baseline["metrics"], rtol)
    )
    problems.append(
        check_floor(
            service.get("orders_per_sec", 0.0),
            gates.get("min_orders_per_sec", 60.0),
            "sustained throughput",
            unit=" orders/s",
        )
    )
    problems.append(
        check_ceiling(
            service.get("latency_p50_ms", float("inf")),
            gates.get("max_p50_ms", 1000.0),
            "p50 admission-to-assignment latency",
            unit="ms",
        )
    )
    problems.append(
        check_ceiling(
            service.get("latency_p99_ms", float("inf")),
            gates.get("max_p99_ms", 3000.0),
            "p99 admission-to-assignment latency",
            unit="ms",
        )
    )
    shed = service.get("orders_shed", 0)
    retries = service.get("client_retries", 0)
    problems.append(
        check_ceiling(
            shed,
            gates.get("max_shed_orders", 0),
            "orders shed by backpressure",
            unit=" orders",
        )
    )
    problems.append(
        check_ceiling(
            retries,
            gates.get("max_client_retries", 0),
            "client retries",
            unit=" retries",
        )
    )
    if service.get("orders_admitted", 0) + shed != current.get("orders_offered"):
        problems.append(
            f"admission accounting broken: {service.get('orders_admitted')} "
            f"admitted + {shed} shed != "
            f"{current.get('orders_offered')} offered"
        )
    if service.get("orders_admitted") != current.get("orders_offered"):
        problems.append(
            f"only {service.get('orders_admitted')} of "
            f"{current.get('orders_offered')} offered orders were admitted"
        )
    # The floor/ceiling helpers return None on pass.
    return [problem for problem in problems if problem]


def summarize(current: Dict) -> None:
    """Per-section one-liners printed on every gate run."""
    service = current.get("service", {})
    print(
        f"service: {service.get('orders_per_sec', 0.0):.1f} orders/s sustained "
        f"(offered {current.get('offered_rate', 0.0):g}/s), "
        f"p50 {service.get('latency_p50_ms', 0.0):.1f}ms, "
        f"p99 {service.get('latency_p99_ms', 0.0):.1f}ms, "
        f"max pending {service.get('max_pending')}, "
        f"shed {service.get('orders_shed', 0)}, "
        f"client retries {service.get('client_retries', 0)}"
    )
    metrics = current.get("metrics", {})
    print(
        f"metrics: served={metrics.get('served_orders')} "
        f"cancelled={metrics.get('cancelled_orders')}, "
        f"replay equal: {current.get('replay_equal')}"
    )


def main(argv=None) -> int:
    return run_gate_cli(
        "dispatch service gate", DEFAULT_BASELINE, check, summarize, argv
    )


if __name__ == "__main__":
    sys.exit(main())
