"""Figure 7 — task assignment on the Chengdu-like city: served orders and revenue vs n."""

from conftest import run_once

from repro.experiments.case_study import run_task_assignment
from repro.experiments.reporting import format_table

CITY = "chengdu_like"


def test_fig7_task_assignment_chengdu(benchmark, context, bench_sides):
    def run_all():
        results = {}
        for dispatcher in ("polar", "ls"):
            for model in ("deepst", "real_data"):
                results[(dispatcher, model)] = run_task_assignment(
                    context, CITY, dispatcher, model, sides=bench_sides, surrogate=True
                )
        return results

    results = run_once(benchmark, run_all)
    rows = []
    for (dispatcher, model), points in results.items():
        for point in points:
            rows.append(
                [
                    dispatcher,
                    model,
                    point.num_mgrids,
                    point.metrics.served_orders,
                    round(point.metrics.total_revenue, 1),
                ]
            )
    print()
    print(
        format_table(
            ["dispatcher", "prediction", "n", "served orders", "total revenue"],
            rows,
            title=f"Figure 7: task assignment vs n ({CITY})",
        )
    )
    for points in results.values():
        assert all(p.metrics.served_orders <= p.metrics.total_orders for p in points)
