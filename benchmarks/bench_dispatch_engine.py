"""Dispatch engine benchmark: vectorized vs scalar, and sparse vs dense.

Times both engines on the fixed 200-driver / 1-day NYC-like reference
scenario (see :func:`repro.dispatch.scenarios.reference_scenario`) in three
configurations (POLAR greedy, POLAR optimal, LS), asserts the vectorized
engine reproduces the scalar engine's :class:`DispatchMetrics` exactly, and
also times the batched order-stream builder against the per-object one.

It additionally times the sparse spatial matching pipeline against the dense
vector engine on the pinned large-fleet stress scenario
(:func:`repro.dispatch.scenarios.large_fleet_scenario` — 40k drivers, surge
demand, tight pickup SLA), asserting bit-identical metrics; the CI perf gate
enforces both the sparse speedup floor and the equality flag.

Run modes
---------
* ``python benchmarks/bench_dispatch_engine.py --output BENCH_dispatch.json``
  emits the machine-readable result consumed by
  ``benchmarks/check_dispatch_regression.py`` (the CI perf gate).
* ``pytest benchmarks/bench_dispatch_engine.py`` runs the same measurement as
  a smoke test under pytest-benchmark timing.

Honest-numbers note: the seed's scalar loop already assembled its per-batch
cost matrices with NumPy and solved them with SciPy, and that shared work
bounds the attainable engine-vs-engine ratio (Amdahl) — the measured speedup
on this scenario is ~2.5-3x, not the 10x-style ratios of purely scalar hot
loops.  The order-stream builder, whose seed path was purely per-object, is
~30x faster; cached scenario replays through ``repro dispatch`` skip the
simulation entirely.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_BENCHMARKS = Path(__file__).resolve().parent
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from gatelib import best_of  # noqa: E402
from repro.dispatch.demand import order_arrays_from_events, orders_from_events  # noqa: E402
from repro.dispatch.entities import OrderArrays  # noqa: E402
from repro.dispatch.scenarios import (  # noqa: E402
    build_scenario_bundle,
    large_fleet_scenario,
    lifecycle_stress_scenario,
    reference_scenario,
)
from repro.utils.rng import seed_for  # noqa: E402

#: Benchmarked (policy, matching) configurations of the reference scenario.
CONFIGS = (("polar", "greedy"), ("polar", "optimal"), ("ls", "optimal"))

#: Timing repetitions per engine (the minimum is reported).
REPEATS = 3


def _best_of(callable_, repeats: int = REPEATS) -> float:
    return best_of(callable_, repeats)


def _metrics_dict(metrics) -> Dict[str, float]:
    return {
        "served_orders": metrics.served_orders,
        "cancelled_orders": metrics.cancelled_orders,
        "total_orders": metrics.total_orders,
        "total_revenue": metrics.total_revenue,
        "total_travel_km": metrics.total_travel_km,
        "unified_cost": metrics.unified_cost,
    }


def run_benchmark(repeats: int = REPEATS) -> Dict:
    """Measure every configuration and return the BENCH_dispatch payload."""
    results: List[Dict] = []
    for policy, matching in CONFIGS:
        scenario = reference_scenario(policy, matching)
        bundle = build_scenario_bundle(scenario)
        # Warm both engines once (allocator, imports).
        vector_metrics = bundle.run("vector")
        scalar_metrics = bundle.run("scalar")
        vector_seconds = _best_of(lambda: bundle.run("vector"), repeats)
        scalar_seconds = _best_of(lambda: bundle.run("scalar"), repeats)
        results.append(
            {
                "policy": policy,
                "matching": matching,
                "scenario": scenario.cache_payload(),
                "orders": len(bundle.orders),
                "fleet_size": scenario.fleet_size,
                "scalar_seconds": scalar_seconds,
                "vector_seconds": vector_seconds,
                "speedup": scalar_seconds / vector_seconds,
                "metrics": _metrics_dict(vector_metrics),
                "metrics_equal": vector_metrics == scalar_metrics,
            }
        )
    order_stream = _order_stream_benchmark(repeats)
    sparse = _sparse_benchmark(repeats)
    lifecycle = _lifecycle_benchmark(repeats)
    return {
        "schema": 3,
        "reference": "200 drivers x 1 NYC-like day (48 slots)",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engines": results,
        "order_stream": order_stream,
        "sparse": sparse,
        "lifecycle": lifecycle,
    }


def _lifecycle_benchmark(repeats: int) -> Dict:
    """Vector vs scalar on the pinned lifecycle stress scenario.

    Two surge test days on a 2000-driver two-shift fleet under a 6-minute
    rider patience (:func:`repro.dispatch.scenarios.lifecycle_stress_scenario`):
    the shift mask, cancellation accounting and cross-midnight state
    carry-over all run on every batch, and the engines must agree bit-for-bit
    — including the ``cancelled_orders`` count.
    """
    scenario = lifecycle_stress_scenario()
    bundle = build_scenario_bundle(scenario)
    vector_metrics = bundle.run("vector")  # warm
    scalar_metrics = bundle.run("scalar")
    vector_seconds = _best_of(lambda: bundle.run("vector"), repeats)
    scalar_seconds = _best_of(lambda: bundle.run("scalar"), min(repeats, 2))
    return {
        "scenario": scenario.cache_payload(),
        "orders": bundle.total_order_count,
        "fleet_size": scenario.fleet_size,
        "test_days": scenario.test_days,
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "metrics": _metrics_dict(vector_metrics),
        "metrics_equal": vector_metrics == scalar_metrics,
    }


def _sparse_benchmark(repeats: int) -> Dict:
    """Sparse vs dense vector engine on the large-fleet stress scenario.

    The dense run is timed once — it takes tens of seconds and its absolute
    time only backs the ratio, which is robust to host speed because both
    pipelines run in the same process on the same inputs.  The sparse run is
    the best of ``min(repeats, 2)`` timed runs after a warm run that also
    checks metric equality.
    """
    scenario = large_fleet_scenario()
    bundle = build_scenario_bundle(scenario)
    sparse_metrics = bundle.run("vector", sparse="always")  # warm + result
    start = time.perf_counter()
    dense_metrics = bundle.run("vector", sparse="never")
    dense_seconds = time.perf_counter() - start
    sparse_seconds = _best_of(
        lambda: bundle.run("vector", sparse="always"), min(repeats, 2)
    )
    return {
        "scenario": scenario.cache_payload(),
        "orders": len(bundle.orders),
        "fleet_size": scenario.fleet_size,
        "dense_seconds": dense_seconds,
        "sparse_seconds": sparse_seconds,
        "speedup": dense_seconds / sparse_seconds,
        "metrics": _metrics_dict(sparse_metrics),
        "metrics_equal": sparse_metrics == dense_metrics,
    }


def _order_stream_benchmark(repeats: int) -> Dict:
    """Batched vs per-object order-stream construction on the reference day."""
    scenario = reference_scenario()
    from repro.data.dataset import EventDataset
    from repro.data.presets import city_preset

    dataset = EventDataset.from_city(
        city_preset(scenario.city, scale=scenario.effective_scale),
        num_days=scenario.num_days,
        seed=scenario.dataset_seed,
    )
    events = dataset.test_events()
    seed = seed_for(f"dispatch-scenario/{scenario.city}/orders", scenario.seed)
    object_seconds = _best_of(lambda: orders_from_events(events, day=0, seed=seed), repeats)
    array_seconds = _best_of(
        lambda: order_arrays_from_events(events, day=0, seed=seed), repeats
    )
    objects = orders_from_events(events, day=0, seed=seed)
    arrays = order_arrays_from_events(events, day=0, seed=seed)
    packed = OrderArrays.from_orders(objects)
    identical = all(
        (getattr(arrays, name) == getattr(packed, name)).all()
        for name in OrderArrays.field_names()
    )
    return {
        "orders": len(arrays),
        "object_seconds": object_seconds,
        "array_seconds": array_seconds,
        "speedup": object_seconds / array_seconds,
        "streams_identical": bool(identical),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="dispatch engine benchmark")
    parser.add_argument(
        "--output",
        default="BENCH_dispatch.json",
        help="path of the emitted JSON (default: BENCH_dispatch.json)",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for entry in payload["engines"]:
        print(
            f"{entry['policy']}/{entry['matching']}: "
            f"scalar {entry['scalar_seconds'] * 1e3:.1f}ms, "
            f"vector {entry['vector_seconds'] * 1e3:.1f}ms, "
            f"speedup {entry['speedup']:.2f}x, "
            f"metrics equal: {entry['metrics_equal']}"
        )
    stream = payload["order_stream"]
    print(
        f"order stream: object {stream['object_seconds'] * 1e3:.1f}ms, "
        f"array {stream['array_seconds'] * 1e3:.1f}ms, "
        f"speedup {stream['speedup']:.1f}x, identical: {stream['streams_identical']}"
    )
    sparse = payload["sparse"]
    print(
        f"sparse large-fleet ({sparse['fleet_size']} drivers, {sparse['orders']} orders): "
        f"dense {sparse['dense_seconds']:.2f}s, sparse {sparse['sparse_seconds']:.2f}s, "
        f"speedup {sparse['speedup']:.2f}x, metrics equal: {sparse['metrics_equal']}"
    )
    lifecycle = payload["lifecycle"]
    print(
        f"lifecycle stress ({lifecycle['fleet_size']} two-shift drivers, "
        f"{lifecycle['orders']} orders over {lifecycle['test_days']} days, "
        f"{lifecycle['metrics']['cancelled_orders']} cancellations): "
        f"scalar {lifecycle['scalar_seconds']:.2f}s, "
        f"vector {lifecycle['vector_seconds']:.2f}s, "
        f"speedup {lifecycle['speedup']:.2f}x, metrics equal: {lifecycle['metrics_equal']}"
    )
    print(f"wrote {args.output}")
    failures = [e for e in payload["engines"] if not e["metrics_equal"]]
    if (
        failures
        or not stream["streams_identical"]
        or not sparse["metrics_equal"]
        or not lifecycle["metrics_equal"]
    ):
        print("ERROR: engine equivalence violated", file=sys.stderr)
        return 1
    return 0


def test_dispatch_engine_speedup(benchmark):
    """Pytest smoke: vectorized engine beats the scalar loop, metrics equal."""
    from conftest import run_once

    payload = run_once(benchmark, run_benchmark, repeats=1)
    for entry in payload["engines"]:
        assert entry["metrics_equal"], entry
        assert entry["speedup"] > 1.0, entry
    assert payload["order_stream"]["streams_identical"]
    assert payload["sparse"]["metrics_equal"], payload["sparse"]
    assert payload["sparse"]["speedup"] > 1.0, payload["sparse"]
    assert payload["lifecycle"]["metrics_equal"], payload["lifecycle"]
    assert payload["lifecycle"]["speedup"] > 1.0, payload["lifecycle"]
    assert payload["lifecycle"]["metrics"]["cancelled_orders"] > 0


def test_lifecycle_stress_scenario_is_pinned():
    """The lifecycle gate's stress profile stays pinned (baseline depends on it)."""
    scenario = lifecycle_stress_scenario()
    assert scenario.fleet_size == 2000
    assert scenario.test_days == 2
    assert scenario.fleet_profile == "two_shift"
    assert scenario.demand_scale == 6.0
    assert scenario.max_wait_minutes == 6.0
    assert scenario.city == "nyc_like"


def test_large_fleet_scenario_is_pinned():
    """The sparse gate's stress profile stays pinned (baseline depends on it)."""
    scenario = large_fleet_scenario()
    assert scenario.fleet_size == 40000
    assert scenario.demand_scale == 12.0
    assert scenario.max_wait_minutes == 4.0
    assert scenario.policy == "polar"
    assert scenario.matching == "optimal"
    assert scenario.city == "nyc_like"


def test_reference_scenario_is_200_drivers_one_day():
    """The gate's reference profile stays pinned (baseline depends on it)."""
    scenario = reference_scenario()
    assert scenario.fleet_size == 200
    assert scenario.slots is None  # whole test day
    assert scenario.city == "nyc_like"
    # A scaled-down scenario variant would silently weaken the gate.
    assert replace(scenario, name=None).cache_payload()["scale"] == 0.01


if __name__ == "__main__":
    sys.exit(main())
