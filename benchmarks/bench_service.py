"""Service benchmark: sustained throughput, latency and replay equality.

Boots the always-on dispatch service in-process on the pinned reference
scenario (:func:`repro.dispatch.scenarios.reference_scenario` — 200
drivers, one full NYC-like day, POLAR greedy), drives it with the seeded
open-loop load generator at a fixed offered rate, drains, and replays the
recorded ingest log offline through ``engine.run``:

* **Throughput** — sustained admitted orders/second over the run;
* **Latency** — admission→assignment p50/p99/max milliseconds;
* **Determinism bridge** — the offline replay of the ingest log must
  reproduce the live run's :class:`DispatchMetrics` bit-for-bit, and the
  metric values are compared against the committed baseline (they equal
  the offline reference-scenario metrics, because wall-clock scheduling
  never changes what the engine computes).

Run modes
---------
* ``python benchmarks/bench_service.py --output BENCH_service.json`` emits
  the machine-readable result consumed by
  ``benchmarks/check_service_regression.py`` (the CI service gate).
* ``pytest benchmarks/bench_service.py`` runs the same measurement as a
  smoke test under pytest-benchmark timing.

The CI gate's negative test sets ``REPRO_SERVICE_INJECT_SLEEP_MS`` so the
match loop sleeps per batch; the benchmark itself never reads the clock for
anything but wall-time measurement, so the injected slowdown shows up only
in the latency/throughput numbers — exactly what the gate must catch.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.dispatch.scenarios import reference_scenario  # noqa: E402
from repro.experiments.service_load import run_service_load  # noqa: E402
from repro.service.loadgen import LoadPhase  # noqa: E402

#: Offered load of the pinned measurement (orders/second).
RATE = 250.0

#: Micro-batch cap and idle-tick cadence of the benchmarked service.
MAX_BATCH = 256
CADENCE_SECONDS = 0.05


def run_benchmark(rate: float = RATE) -> Dict:
    """Drive the reference scenario through the service; return the payload."""
    scenario = reference_scenario("polar", "greedy")
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        log_path = str(Path(tmp) / "ingest.jsonl")
        # One long phase; the generator stops when the day's stream is done.
        report = run_service_load(
            scenario,
            [LoadPhase(rate=rate, seconds=3600.0)],
            ingest_log=log_path,
            max_batch=MAX_BATCH,
            cadence_seconds=CADENCE_SECONDS,
        )
    service = report["service"]
    loadgen = report["loadgen"]
    return {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenario": report["scenario"],
        "offered_rate": rate,
        "orders_offered": report["orders_offered"],
        "service": {
            "orders_admitted": service["orders_admitted"],
            "orders_per_sec": service["orders_per_sec"],
            "latency_p50_ms": service["latency_p50_ms"],
            "latency_p99_ms": service["latency_p99_ms"],
            "latency_mean_ms": service["latency_mean_ms"],
            "latency_max_ms": service["latency_max_ms"],
            "max_pending": service["max_pending"],
            "assigned": service["assigned"],
            "cancelled": service["cancelled"],
            "unserved": service["unserved"],
            "orders_shed": service["orders_shed"],
            "client_retries": loadgen["retries"],
            "state": service["state"],
        },
        "metrics": service["metrics"],
        "replay_equal": report["replay"]["replay_equal"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="dispatch service benchmark")
    parser.add_argument(
        "--output",
        default="BENCH_service.json",
        help="path of the emitted JSON (default: BENCH_service.json)",
    )
    parser.add_argument("--rate", type=float, default=RATE)
    args = parser.parse_args(argv)
    payload = run_benchmark(rate=args.rate)
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    service = payload["service"]
    print(
        f"service: {service['orders_admitted']} orders at "
        f"{service['orders_per_sec']:.1f}/s sustained "
        f"(offered {payload['offered_rate']:g}/s), "
        f"p50 {service['latency_p50_ms']:.1f}ms, "
        f"p99 {service['latency_p99_ms']:.1f}ms, "
        f"max pending {service['max_pending']}, "
        f"shed {service['orders_shed']}, "
        f"client retries {service['client_retries']}"
    )
    print(
        f"metrics: served={payload['metrics']['served_orders']} "
        f"cancelled={payload['metrics']['cancelled_orders']} "
        f"unified_cost={payload['metrics']['unified_cost']:.2f}, "
        f"replay equal: {payload['replay_equal']}"
    )
    print(f"wrote {args.output}")
    if not payload["replay_equal"]:
        print("ERROR: ingest-log replay diverged from the live run", file=sys.stderr)
        return 1
    return 0


def test_service_throughput(benchmark):
    """Pytest smoke: the service sustains load and replays bit-identically."""
    from conftest import run_once

    payload = run_once(benchmark, run_benchmark, rate=400.0)
    assert payload["replay_equal"], payload["metrics"]
    assert payload["service"]["orders_admitted"] == payload["orders_offered"]
    assert payload["service"]["orders_per_sec"] > 0
    assert payload["service"]["orders_shed"] == 0
    assert payload["service"]["client_retries"] == 0


if __name__ == "__main__":
    sys.exit(main())
