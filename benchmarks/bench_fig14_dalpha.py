"""Figure 14 — D_alpha(N) against the HGrid resolution.

Paper shape: D_alpha grows quickly with N and then flattens once the HGrids are
small enough to be internally uniform; the flattening point is where the paper
fixes N.  With a shorter alpha-estimation window the curve keeps creeping up
because the estimates themselves get noisy.
"""

from conftest import run_once

from repro.experiments.homogeneity_exp import figure14_dalpha_curve
from repro.experiments.reporting import format_table

RESOLUTIONS = (2, 4, 8, 16, 32)


def test_fig14_dalpha_curve(benchmark, context):
    full, short = run_once(
        benchmark,
        lambda: (
            figure14_dalpha_curve(context, "nyc_like", resolutions=RESOLUTIONS),
            figure14_dalpha_curve(
                context, "nyc_like", resolutions=RESOLUTIONS, training_weeks=1
            ),
        ),
    )
    rows = [
        [resolution, resolution * resolution, round(full_value, 2), round(short_value, 2)]
        for resolution, full_value, short_value in zip(
            RESOLUTIONS, full.values, short.values
        )
    ]
    print()
    print(
        format_table(
            ["sqrt(N)", "N", "D_alpha (full window)", "D_alpha (1 week)"],
            rows,
            title="Figure 14: D_alpha(N) vs N (NYC-like)",
        )
    )
    # Monotone growth with N.
    assert list(full.values) == sorted(full.values)
    # Relative growth slows at the fine end (the flattening of Figure 14).
    early_growth = (full.values[1] - full.values[0]) / max(full.values[0], 1e-9)
    late_growth = (full.values[-1] - full.values[-2]) / max(full.values[-2], 1e-9)
    assert late_growth < early_growth
    print(f"selected N (turning point): {full.turning_point()}^2")
