"""Figure 9 — route planning (DAIF) on the NYC-like city vs n.

Paper shape: served requests first increase then decrease with ``n``; the
unified cost is minimised at a moderate ``n``; with real order data a larger
``n`` keeps helping.
"""

from conftest import run_once

from repro.experiments.case_study import run_route_planning
from repro.experiments.reporting import format_table

CITY = "nyc_like"


def test_fig9_route_planning(benchmark, context, bench_sides):
    def run_all():
        return {
            model: run_route_planning(
                context, CITY, model, sides=bench_sides, surrogate=True
            )
            for model in ("deepst", "real_data")
        }

    results = run_once(benchmark, run_all)
    rows = []
    for model, points in results.items():
        for point in points:
            rows.append(
                [
                    model,
                    point.num_mgrids,
                    point.metrics.served_orders,
                    round(point.metrics.unified_cost, 1),
                    round(point.metrics.total_travel_km, 1),
                ]
            )
    print()
    print(
        format_table(
            ["prediction", "n", "served requests", "unified cost", "travel km"],
            rows,
            title=f"Figure 9: DAIF route planning vs n ({CITY})",
        )
    )
    for model, points in results.items():
        assert all(p.metrics.unified_cost >= 0 for p in points), model
