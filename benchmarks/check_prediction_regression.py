"""CI perf-regression gate for the prediction engine benchmark.

Compares a freshly emitted ``BENCH_prediction.json`` (from
``benchmarks/bench_prediction.py``) against the committed baseline
``benchmarks/baseline_prediction.json`` and fails (exit code 1) on
regression:

* **Correctness** — the loop-unfold and strided-unfold training runs must
  report bit-identical histories and forward outputs
  (``unfold_swap_identical``); the production forward must stay bit-identical
  to the seed's (``forward_identical_to_seed``); the production training
  history may drift from the seed backward only within ``history_rtol``
  (the two backwards are the same sums in different floating-point
  association); and the reference run's final losses must match the baseline
  within ``loss_rtol`` — same-machine reruns are bit-deterministic, but BLAS
  kernels differ across CPU micro-architectures, so the cross-machine
  comparison gets a looser (still tight) tolerance.
* **Speed** — the production/seed training speedup must stay above
  ``min_training_speedup``.  The ratio is the primary gate because it is
  robust to CI hardware differences; an absolute wall-time ceiling
  (``max_production_seconds_factor`` times the baseline measurement)
  additionally catches pathological slowdowns that hit both modes.
* **Suite cache** — predictor-suite cache replays must stay byte-identical
  across reruns and across the thread/process executors.

Usage::

    python benchmarks/bench_prediction.py --output BENCH_prediction.json
    python benchmarks/check_prediction_regression.py BENCH_prediction.json
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

_BENCHMARKS = Path(__file__).resolve().parent
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from gatelib import (  # noqa: E402
    check_baseline_ceiling,
    check_floor,
    compare_metrics,
    run_gate_cli,
)

DEFAULT_BASELINE = _BENCHMARKS / "baseline_prediction.json"


def check(current: Dict, baseline: Dict) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = pass)."""
    gates = baseline.get("gates", {})
    min_speedup = float(gates.get("min_training_speedup", 2.0))
    loss_rtol = float(gates.get("loss_rtol", 1e-5))
    history_rtol = float(gates.get("history_rtol", 1e-6))
    time_factor = float(gates.get("max_production_seconds_factor", 5.0))
    problems: List[str] = []

    training = current.get("training")
    if training is None:
        return ["training section missing from benchmark output"]
    base_training = baseline["training"]

    if not training.get("unfold_swap_identical", False):
        problems.append(
            "loop-unfold and strided-unfold training are no longer bit-identical"
        )
    if not training.get("forward_identical_to_seed", False):
        problems.append("production forward pass no longer bit-identical to the seed")
    drift = float(training.get("seed_history_drift", float("inf")))
    if drift > history_rtol:
        problems.append(
            f"training history drifted {drift:.2e} from the seed backward "
            f"(allowed {history_rtol:.0e})"
        )
    problems.extend(
        f"reference {problem}"
        for problem in compare_metrics(
            training,
            {key: base_training[key] for key in ("final_train_loss", "final_val_mae")},
            loss_rtol,
        )
    )
    problems.append(
        check_floor(training.get("speedup", 0.0), min_speedup, "training speedup")
    )
    problems.append(
        check_baseline_ceiling(
            training.get("production_seconds", float("inf")),
            base_training["production_seconds"],
            time_factor,
            "production wall-time",
        )
    )

    float32 = current.get("float32", {})
    if not float32.get("loss_decreased", False):
        problems.append("float32 training no longer reduces the loss")

    suite = current.get("suite_cache", {})
    if not suite.get("rerun_bytes_identical", False):
        problems.append("prediction suite cache reruns are not byte-identical")
    if not suite.get("executor_bytes_identical", False):
        problems.append(
            "prediction suite thread/process executors wrote different cache bytes"
        )
    # The floor/ceiling helpers return None on pass.
    return [problem for problem in problems if problem]


def summarize(current: Dict) -> None:
    """Per-section one-liners printed on every gate run."""
    training = current.get("training", {})
    print(
        f"training speedup {training.get('speedup', 0.0):.2f}x "
        f"(production {training.get('production_seconds', 0.0):.2f}s vs seed "
        f"{training.get('seed_seconds', 0.0):.2f}s), "
        f"unfold swap identical: {training.get('unfold_swap_identical')}, "
        f"forward == seed: {training.get('forward_identical_to_seed')}"
    )
    suite = current.get("suite_cache", {})
    print(
        f"suite cache byte-stable: rerun {suite.get('rerun_bytes_identical')}, "
        f"executors {suite.get('executor_bytes_identical')}"
    )


def main(argv=None) -> int:
    return run_gate_cli(
        "prediction perf-regression gate", DEFAULT_BASELINE, check, summarize, argv
    )


if __name__ == "__main__":
    sys.exit(main())
