"""Table IV — cost, probability of optimality and optimal ratio of the searches.

Paper result: Ternary Search and the Iterative Method are both an order of
magnitude cheaper than Brute-force Search; the Iterative Method finds the
global optimum more often (81-96%) than Ternary Search (52-71%), and both stay
within ~3% of the optimal dispatch performance.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.search_eval import evaluate_search_algorithms


def test_table4_search_algorithms(benchmark, context):
    cities = ("nyc_like", "chengdu_like", "xian_like")
    slots = context.config.case_study_slots

    def run_all():
        summaries = {}
        for city in cities:
            _, rows = evaluate_search_algorithms(
                context,
                city,
                model="deepst",
                slots=slots,
                algorithms=("ternary", "iterative", "brute_force"),
                surrogate=True,
                compute_optimal_ratio=True,
            )
            summaries[city] = rows
        return summaries

    summaries = run_once(benchmark, run_all)
    rows = []
    for city, city_rows in summaries.items():
        for summary in city_rows:
            rows.append(
                [
                    city,
                    summary.algorithm,
                    round(summary.cost_seconds, 3),
                    f"{100 * summary.probability_optimal:.1f}%",
                    f"{100 * summary.optimal_ratio:.2f}%",
                    round(summary.mean_evaluations, 1),
                ]
            )
    print()
    print(
        format_table(
            ["city", "algorithm", "cost (s)", "probability", "optimal ratio", "mean evals"],
            rows,
            title="Table IV: performance of the OGSS search algorithms",
        )
    )
    for city, city_rows in summaries.items():
        by_name = {s.algorithm: s for s in city_rows}
        assert by_name["brute_force"].probability_optimal == 1.0
        # The heuristic searches evaluate fewer candidates than brute force.
        assert by_name["ternary"].mean_evaluations <= by_name["brute_force"].mean_evaluations
        assert by_name["iterative"].mean_evaluations <= by_name["brute_force"].mean_evaluations
