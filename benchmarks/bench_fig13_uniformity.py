"""Figures 12/13 — intra-MGrid unevenness vs expression error.

Paper shape: the expression error of an MGrid grows with the unevenness
``D_alpha`` of the demand inside it; a near-uniform MGrid has a small
expression error even when it is busy.
"""

from conftest import run_once

from repro.analysis.uniformity import correlation
from repro.experiments.homogeneity_exp import figure13_uniformity_scatter
from repro.experiments.reporting import format_table


def test_fig13_uniformity_vs_expression_error(benchmark, context):
    points = run_once(
        benchmark,
        figure13_uniformity_scatter,
        context,
        "nyc_like",
        4,
        4,
    )
    busy = [p for p in points if p.total_alpha > 0.5]
    busy.sort(key=lambda p: p.d_alpha)
    rows = [
        [p.mgrid_index, round(p.total_alpha, 2), round(p.d_alpha, 3), round(p.expression_error, 3)]
        for p in busy
    ]
    print()
    print(
        format_table(
            ["mgrid", "total alpha", "D_alpha", "expression error"],
            rows,
            title="Figure 13: per-MGrid unevenness vs expression error (NYC-like)",
        )
    )
    assert len(busy) >= 3
    assert correlation(busy) > 0.0
    # The most uneven busy MGrid has a larger error than the most uniform one.
    assert busy[-1].expression_error >= busy[0].expression_error
