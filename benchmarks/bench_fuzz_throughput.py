"""Differential-fuzzer throughput: samples/second across all engine modes.

Informational only — there is no CI gate on these numbers.  They size the
nightly budget (`.github/workflows/fuzz.yml` runs `repro fuzz --budget 300`)
and catch gross harness slowdowns by eye: each fuzz sample replays one micro
world on four engine configurations (scalar oracle, dense vector, forced
sparse, mixed auto), so throughput is dominated by simulator setup and the
matching kernels on tiny matrices.

Run modes
---------
* ``python benchmarks/bench_fuzz_throughput.py`` prints a summary table.
* ``--output BENCH_fuzz.json`` additionally writes a machine-readable
  result (no regression checker consumes it; it is an artifact for humans).
* ``pytest benchmarks/bench_fuzz_throughput.py`` runs a small campaign as a
  smoke test under pytest-benchmark timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.fuzz.campaign import run_campaign  # noqa: E402
from repro.fuzz.generator import sample_world  # noqa: E402
from repro.fuzz.runner import run_differential  # noqa: E402

#: Campaign size for the timed run — big enough to amortise per-sample noise,
#: small enough to finish in seconds on a laptop.
SAMPLES = 60

#: Campaign seed (the fixed CI smoke seed).
SEED = 7


def measure(samples: int = SAMPLES, seed: int = SEED) -> Dict:
    """Time one shrink-free campaign and a single-sample differential."""
    # Warm up imports/JIT-free numpy paths on one sample outside the clock.
    run_differential(sample_world(0, seed=seed))
    start = time.perf_counter()
    report = run_campaign(seed=seed, samples=samples, shrink=False)
    seconds = time.perf_counter() - start
    return {
        "schema": 1,
        "samples": report.samples_run,
        "seconds": round(seconds, 4),
        "samples_per_second": round(report.samples_run / seconds, 2),
        "ok": report.ok,
        "benign_ties": len(report.benign_ties),
        "failures": len(report.failures),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=SAMPLES)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--output", type=str, default=None, help="write JSON here")
    args = parser.parse_args(argv)
    result = measure(samples=args.samples, seed=args.seed)
    print(
        f"fuzz throughput: {result['samples']} samples in {result['seconds']}s "
        f"({result['samples_per_second']} samples/s) — "
        f"{result['ok']} ok, {result['benign_ties']} benign tie(s), "
        f"{result['failures']} failure(s)"
    )
    if args.output:
        Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    # Informational benchmark: failures here mean a real engine divergence,
    # which the test suite (not this script) is responsible for gating.
    return 0


def test_fuzz_throughput_smoke(benchmark=None):
    """Pytest entry: a 15-sample campaign must be clean and fast."""
    if benchmark is not None:
        report = benchmark(run_campaign, seed=SEED, samples=15, shrink=False)
    else:
        report = run_campaign(seed=SEED, samples=15, shrink=False)
    assert report.samples_run == 15
    assert not report.failed


if __name__ == "__main__":
    sys.exit(main())
