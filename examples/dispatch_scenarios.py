"""Dispatch scenario suite: fan (city x policy x fleet x demand) simulations.

Runs a small scenario grid plus the stress and lifecycle variants of one
base scenario — driver shift change, overnight skeleton fleet, a
high-cancellation surge and a 2-day carry-over replay — through the cached
parallel suite runner, then replays it to show the cache hits.  Equivalent
CLI::

    python -m repro dispatch --preset xian --fleet-sizes 30 60 --demand-scales 1 2
    python -m repro dispatch --preset xian --fleet-sizes 60 --scenario lifecycle
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dispatch.scenarios import (
    DispatchScenario,
    lifecycle_scenarios,
    stress_scenarios,
)
from repro.sweep.dispatch import DispatchSuiteRunner, suite_scenarios


def main() -> None:
    grid = suite_scenarios(
        ["xian_like"],
        policies=("polar", "ls"),
        fleet_sizes=(30, 60),
        demand_scales=(1.0, 2.0),
        seeds=(7,),
        scale=0.004,
        num_days=8,
        slots=(16, 17),
    )
    base = DispatchScenario(
        city="xian_like", policy="polar", fleet_size=60, scale=0.004, num_days=8, slots=(16, 17)
    )
    scenarios = grid + stress_scenarios(base) + lifecycle_scenarios(base)

    with tempfile.TemporaryDirectory() as cache_dir:
        report = DispatchSuiteRunner(scenarios, cache_dir=cache_dir, max_workers=4).run()
        print(f"{len(report.outcomes)} scenarios in {report.seconds:.2f}s\n")
        for outcome in report.outcomes:
            metrics = outcome.metrics
            print(
                f"{outcome.scenario.label:55s} "
                f"served {metrics.served_orders:4d}/{metrics.total_orders:<4d} "
                f"cancelled {metrics.cancelled_orders:3d} "
                f"revenue {metrics.total_revenue:9.1f} "
                f"({'cache' if outcome.from_cache else f'{outcome.seconds * 1e3:.0f} ms'})"
            )

        replay = DispatchSuiteRunner(scenarios, cache_dir=cache_dir, max_workers=4).run()
        print(
            f"\nreplay: {replay.cache_hits} cache hits, "
            f"{replay.cache_misses} misses in {replay.seconds:.2f}s"
        )


if __name__ == "__main__":
    main()
