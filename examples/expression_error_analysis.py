#!/usr/bin/env python3
"""Expression-error analysis: homogeneity, algorithms and city comparison.

Walks through the paper's Section III machinery on synthetic cities:

1. pick the HGrid budget N from the turning point of the D_alpha(N) curve
   (Figure 14);
2. compare the expression-error calculators (naive / Algorithm 1 / Algorithm 2
   / Gaussian approximation) in cost and accuracy (Figure 16);
3. show how the total expression error falls with the number of MGrids for the
   three cities (Figure 3) and how it relates to intra-grid unevenness
   (Figure 13).

Run with:

    python examples/expression_error_analysis.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.uniformity import correlation, uniformity_vs_expression_error
from repro.core import (
    GridLayout,
    d_alpha_curve,
    expression_error_algorithm1,
    expression_error_algorithm2,
    expression_error_gaussian,
    expression_error_reference,
    total_expression_error,
)
from repro.data import EventDataset, chengdu_like, nyc_like, xian_like
from repro.experiments.reporting import format_table


def select_hgrid_budget(dataset: EventDataset) -> int:
    print(f"--- {dataset.name}: selecting N from the D_alpha curve ---")
    curve = d_alpha_curve(lambda g: dataset.alpha(g, slot=16), [2, 4, 8, 16, 32])
    rows = [
        [f"{resolution}x{resolution}", round(value, 1)]
        for resolution, value in zip(curve.resolutions, curve.values)
    ]
    print(format_table(["HGrid lattice", "D_alpha"], rows))
    side = curve.turning_point()
    print(f"turning point -> N = {side}x{side}\n")
    return side * side


def compare_calculators() -> None:
    print("--- expression-error calculators (alpha_ij=3, rest=45, m=16) ---")
    rows = []
    for name, function in (
        ("reference (dense sum)", expression_error_reference),
        ("algorithm 1 (O(mK^2))", expression_error_algorithm1),
        ("algorithm 2 (O(mK))", expression_error_algorithm2),
    ):
        start = time.perf_counter()
        value = function(3.0, 45.0, 16, 80)
        rows.append([name, round(value, 6), f"{1e3 * (time.perf_counter() - start):.2f} ms"])
    start = time.perf_counter()
    gaussian = expression_error_gaussian(3.0, 45.0, 16)
    rows.append(
        ["gaussian approximation", round(gaussian, 6), f"{1e3 * (time.perf_counter() - start):.2f} ms"]
    )
    print(format_table(["calculator", "E_e(i,j)", "time"], rows))
    print()


def city_expression_errors() -> None:
    print("--- total expression error vs n per city (Figure 3) ---")
    cities = {
        "nyc_like": nyc_like(scale=0.01),
        "chengdu_like": chengdu_like(scale=0.01),
        "xian_like": xian_like(scale=0.01),
    }
    rows = []
    datasets = {}
    for name, config in cities.items():
        datasets[name] = EventDataset.from_city(config, num_days=14, seed=9)
        for side in (2, 4, 8, 16):
            layout = GridLayout.for_ogss(side * side, 16 * 16)
            alpha = datasets[name].alpha(layout.fine_resolution, slot=16)
            rows.append([name, f"{side}x{side}", round(total_expression_error(alpha, layout), 1)])
    print(format_table(["city", "n", "total expression error"], rows))
    print()

    print("--- intra-MGrid unevenness vs expression error (Figure 13) ---")
    layout = GridLayout(num_mgrids=16, hgrids_per_mgrid=16)
    points = uniformity_vs_expression_error(datasets["nyc_like"], layout, slot=16)
    busy = [p for p in points if p.total_alpha > 0.5]
    print(
        f"busy MGrids: {len(busy)}, correlation(D_alpha, expression error) = "
        f"{correlation(busy):.2f}"
    )


def main() -> None:
    dataset = EventDataset.from_city(nyc_like(scale=0.01), num_days=14, seed=9)
    select_hgrid_budget(dataset)
    compare_calculators()
    city_expression_errors()


if __name__ == "__main__":
    main()
