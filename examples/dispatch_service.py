#!/usr/bin/env python3
"""Drive the always-on dispatch service and verify the replay bridge.

Boots an in-process :class:`DispatchService` on a small seeded scenario,
offers its order stream through the open-loop load generator (a steady
phase, an idle gap, then a burst), drains, and replays the recorded ingest
log offline through ``engine.run`` — the metrics must agree bit-for-bit,
because wall clock only decides *when* orders reach the engine, never what
the engine computes.

Run with:

    python examples/dispatch_service.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dispatch.scenarios import DispatchScenario
from repro.service import LoadPhase
from repro.experiments.service_load import run_service_load


def main() -> None:
    scenario = DispatchScenario(
        city="xian_like",
        policy="polar",
        matching="greedy",
        fleet_size=40,
        seed=11,
        slots=(16, 17),
    )
    phases = [
        LoadPhase(rate=150.0, seconds=2.0),  # steady load
        LoadPhase(rate=0.0, seconds=0.5),  # idle gap: adaptive cadence parks
        LoadPhase(rate=400.0, seconds=2.0),  # burst: micro-batching kicks in
    ]
    print(f"Serving {scenario.label} in-process and offering its order stream...")
    with tempfile.TemporaryDirectory() as tmp:
        log = str(Path(tmp) / "ingest.jsonl")
        report = run_service_load(scenario, phases, ingest_log=log)

    loadgen, service = report["loadgen"], report["service"]
    print(
        f"  offered {loadgen['orders_sent']} orders "
        f"at {loadgen['offered_rate']:.0f}/s over {len(phases)} phases"
    )
    print(
        f"  service sustained {service['orders_per_sec']:.0f} orders/s, "
        f"p50 latency {service['latency_p50_ms']:.1f}ms, "
        f"p99 {service['latency_p99_ms']:.1f}ms, "
        f"peak pending {service['max_pending']}"
    )
    metrics = service["metrics"]
    print(
        f"  outcome: {metrics['served_orders']} served, "
        f"{metrics['cancelled_orders']} cancelled of "
        f"{metrics['total_orders']} admitted"
    )
    replay = report["replay"]
    print(
        f"  offline replay of the ingest log: {replay['order_count']} orders, "
        f"metrics equal bit-for-bit: {replay['replay_equal']}"
    )
    if not replay["replay_equal"]:
        raise SystemExit("replay diverged from the live run")


if __name__ == "__main__":
    main()
