#!/usr/bin/env python3
"""Compare prediction models and their interaction with the grid size.

The paper's Figure 4/5 story: a more accurate prediction model has a smaller
model error, which shifts the optimal grid size towards finer grids (larger
``n``) because the expression error then dominates earlier.  This example

1. trains the three NumPy prediction models (MLP, DeepST, DMVST-Net) on a small
   synthetic city at one grid size and reports their mean absolute error, and
2. uses the calibrated surrogates to sweep the grid size and show how the
   optimal ``n`` depends on model accuracy.

Run with:

    python examples/compare_prediction_models.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import GridTuner
from repro.core.interfaces import actual_counts_for_targets, evaluation_targets
from repro.core.model_error import mean_absolute_error
from repro.data import EventDataset, xian_like
from repro.experiments.reporting import format_table
from repro.prediction import (
    DeepSTPredictor,
    DMVSTNetPredictor,
    HistoricalAveragePredictor,
    MLPPredictor,
    surrogate_factory,
)

GRID_SIDE = 8


def train_and_score(dataset: EventDataset) -> None:
    """Train each NumPy model at one resolution and report its MAE."""
    models = {
        "historical_average": HistoricalAveragePredictor(),
        "mlp": MLPPredictor(hidden_sizes=(64, 64), epochs=8, seed=1),
        "deepst": DeepSTPredictor(filters=8, period=1, epochs=8, seed=1),
        "dmvst_net": DMVSTNetPredictor(filters=8, period=1, epochs=8, seed=1),
    }
    targets = evaluation_targets(dataset, dataset.split.test_days)
    actual = actual_counts_for_targets(dataset, GRID_SIDE, targets)
    rows = []
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(dataset, GRID_SIDE)
        predictions = model.predict(dataset, GRID_SIDE, targets)
        rows.append(
            [
                name,
                round(mean_absolute_error(predictions, actual), 3),
                f"{time.perf_counter() - start:.1f}s",
            ]
        )
    print(
        format_table(
            ["model", f"MAE at {GRID_SIDE}x{GRID_SIDE}", "train+predict time"],
            rows,
            title="NumPy prediction models on the Xi'an-like city",
        )
    )


def optimal_n_by_accuracy(dataset: EventDataset) -> None:
    """Sweep the grid size with surrogates of increasing accuracy."""
    rows = []
    for name in ("mlp", "deepst", "dmvst_net"):
        tuner = GridTuner(dataset, surrogate_factory(name, seed=3), hgrid_budget=16 * 16)
        result = tuner.select("brute_force", min_side=2)
        rows.append(
            [
                name,
                f"{result.optimal_side}x{result.optimal_side}",
                round(result.upper_bound.model_error, 1),
                round(result.upper_bound.expression_error, 1),
            ]
        )
    print()
    print(
        format_table(
            ["accuracy profile", "optimal n", "model error", "expression error"],
            rows,
            title="Optimal grid size vs model accuracy (surrogate sweep)",
        )
    )
    print(
        "\nA more accurate model tolerates a finer grid: its optimal n is at "
        "least as large as that of a weaker model (paper Section V-C)."
    )


def main() -> None:
    print("Generating a synthetic Xi'an-like dataset...")
    dataset = EventDataset.from_city(xian_like(scale=0.01), num_days=21, seed=5)
    print(f"  {len(dataset.events):,} orders over {dataset.num_days} days\n")
    train_and_score(dataset)
    optimal_n_by_accuracy(dataset)


if __name__ == "__main__":
    main()
