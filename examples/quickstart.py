#!/usr/bin/env python3
"""Quickstart: tune the grid size of a spatiotemporal prediction model.

The script generates a small synthetic NYC-like taxi dataset, evaluates the
real-error upper bound over a range of grid sizes, runs the paper's three OGSS
search algorithms, and empirically verifies Theorem II.1 (the real error never
exceeds model error + expression error) at the selected grid size.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import GridTuner
from repro.data import EventDataset, nyc_like
from repro.experiments.reporting import format_table
from repro.prediction import model_factory


def main() -> None:
    print("Generating a synthetic NYC-like taxi dataset (3 weeks, laptop scale)...")
    dataset = EventDataset.from_city(nyc_like(scale=0.01), num_days=21, seed=7)
    print(f"  {len(dataset.events):,} orders over {dataset.num_days} days")

    # The historical-average model keeps the quickstart fast; swap in
    # model_factory("deepst") or model_factory("dmvst_net") for the neural models.
    tuner = GridTuner(
        dataset,
        model_factory("historical_average"),
        hgrid_budget=16 * 16,
    )

    print("\nUpper bound of the real error over candidate grid sizes:")
    curve = tuner.error_curve([2, 4, 8, 16])
    rows = [
        [f"{side}x{side}", round(r.model_error, 1), round(r.expression_error, 1), round(r.total, 1)]
        for side, r in curve.items()
    ]
    print(format_table(["grid", "model error", "expression error", "upper bound"], rows))

    print("\nSearching for the optimal grid size:")
    for algorithm in ("brute_force", "ternary", "iterative"):
        kwargs = {"initial_side": 8, "bound": 2} if algorithm == "iterative" else {}
        result = tuner.select(algorithm, min_side=2, **kwargs)
        print(
            f"  {algorithm:<12} -> n = {result.optimal_side}x{result.optimal_side} "
            f"(upper bound {result.upper_bound.total:.1f}, "
            f"{result.search.evaluations} evaluations)"
        )

    best = tuner.select("iterative", min_side=2, initial_side=8, bound=2)
    report = tuner.evaluate_real_error(best.optimal_side)
    print(
        f"\nEmpirical error decomposition at the selected grid "
        f"({best.optimal_side}x{best.optimal_side}):"
    )
    print(f"  real error        = {report.real_error:.1f}")
    print(f"  model error       = {report.model_error:.1f}")
    print(f"  expression error  = {report.expression_error:.1f}")
    print(f"  upper bound       = {report.upper_bound:.1f}")
    print(f"  Theorem II.1 (real <= bound) holds: {report.satisfies_upper_bound()}")


if __name__ == "__main__":
    main()
