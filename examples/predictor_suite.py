"""Predictor suite: fan (city x model x resolution) trainings, then dispatch on them.

Trains a small predictor grid through the cached parallel suite runner,
replays it to show the cache hits, and finally runs one dispatch scenario
whose repositioning is guided by each model's *predicted* demand — the
paper's full predict-then-dispatch pipeline.  Equivalent CLI::

    python -m repro predict --preset xian --models historical_average,mlp --resolutions 4 8
    python -m repro dispatch --preset xian --guidance mlp
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dispatch.scenarios import DispatchScenario, run_scenario
from repro.sweep.prediction import PredictionSuiteRunner, predictor_scenarios


def main() -> None:
    scenarios = predictor_scenarios(
        ["xian_like"],
        models=("historical_average", "mlp", "deepst"),
        resolutions=(4, 8),
        seeds=(7,),
        scale=0.004,
        num_days=8,
        hyper=(("epochs", 5), ("max_train_samples", 128)),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        report = PredictionSuiteRunner(scenarios, cache_dir=cache_dir, max_workers=4).run()
        print(f"{len(report.outcomes)} predictors in {report.seconds:.2f}s\n")
        for outcome in report.outcomes:
            epochs = f"{outcome.epochs_run} epochs" if outcome.epochs_run else "closed form"
            print(
                f"{outcome.scenario.label:40s} "
                f"mae {outcome.mae:6.3f}  rmse {outcome.rmse:6.3f}  {epochs:12s} "
                f"({'cache' if outcome.from_cache else f'{outcome.seconds * 1e3:.0f} ms'})"
            )
        print(f"\nbest model per (city, n, seed): {report.best_models()}")

        replay = PredictionSuiteRunner(scenarios, cache_dir=cache_dir, max_workers=4).run()
        print(
            f"replay: {replay.cache_hits} cache hits, "
            f"{replay.cache_misses} misses in {replay.seconds:.2f}s\n"
        )

    print("dispatching on predicted demand (fleet repositions on each model):")
    for guidance in ("none", "historical_average", "mlp", "oracle"):
        result = run_scenario(
            DispatchScenario(
                city="xian_like",
                fleet_size=40,
                scale=0.004,
                num_days=8,
                slots=(16, 17),
                guidance=guidance,
            )
        )
        metrics = result.metrics
        print(
            f"guidance={guidance:20s} served {metrics.served_orders:3d}/"
            f"{metrics.total_orders:<3d} revenue {metrics.total_revenue:8.1f}"
        )


if __name__ == "__main__":
    main()
