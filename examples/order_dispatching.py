#!/usr/bin/env python3
"""Case study: how the grid size affects prediction-based order dispatching.

Mirrors the paper's Section V-D: predictions made at different grid sizes feed
the POLAR (served-orders-maximising) and LS (revenue-maximising) dispatchers on
a synthetic NYC-like morning peak, and the script reports how the dispatch
outcome varies with ``n`` and how much the tuned grid size improves over the
systems' original defaults (Table III).

Run with:

    python examples/order_dispatching.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ExperimentContext, TINY
from repro.experiments.case_study import run_task_assignment, table3_promotion
from repro.experiments.reporting import format_table


def main() -> None:
    context = ExperimentContext(config=TINY)
    sides = list(context.config.mgrid_sides)
    city = "nyc_like"

    print(f"Simulating the {city} morning peak with POLAR and LS...")
    print(f"  candidate grids: {['%dx%d' % (s, s) for s in sides]}")

    rows = []
    for dispatcher in ("polar", "ls"):
        points = run_task_assignment(
            context, city, dispatcher, "deepst", sides=sides, surrogate=True
        )
        for point in points:
            rows.append(
                [
                    dispatcher,
                    f"{point.mgrid_side}x{point.mgrid_side}",
                    point.metrics.served_orders,
                    point.metrics.total_orders,
                    round(point.metrics.total_revenue, 1),
                ]
            )
    print()
    print(
        format_table(
            ["dispatcher", "grid", "served", "total", "revenue"],
            rows,
            title="Dispatch outcome vs grid size (DeepST-calibrated predictions)",
        )
    )

    print("\nImprovement from the tuned grid size (Table III analogue):")
    promotion = table3_promotion(context, city=city, model="deepst", sides=sides)
    rows = [
        [
            row.algorithm,
            row.metric,
            f"{row.original_side}x{row.original_side}",
            f"{row.optimal_side}x{row.optimal_side}",
            f"{100 * row.improvement_ratio:+.2f}%",
        ]
        for row in promotion
    ]
    print(format_table(["algorithm", "metric", "original n", "optimal n", "improvement"], rows))


if __name__ == "__main__":
    main()
