#!/usr/bin/env python3
"""Multi-city sweep: tune every (city, slot) combination in parallel.

The script fans OGSS searches across the three city presets and two morning
peak slots using the :mod:`repro.sweep` runner, persists the results in an
on-disk cache, then reruns the sweep to show that the second pass is replayed
from the cache without recomputation.

Run with:

    python examples/sweep_multi_city.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.reporting import format_table
from repro.sweep import SweepRunner, sweep_tasks


def print_report(report) -> None:
    rows = [
        [
            o.task.city,
            o.task.slot,
            f"{o.result.best_side}x{o.result.best_side}",
            round(o.upper_bound, 1),
            o.result.evaluations,
            round(o.seconds, 3),
            "hit" if o.from_cache else "miss",
        ]
        for o in report.outcomes
    ]
    print(
        format_table(
            ["city", "slot", "grid", "upper bound", "evals", "seconds", "cache"], rows
        )
    )
    print(
        f"  {len(report.outcomes)} searches in {report.seconds:.2f}s "
        f"({report.cache_hits} cache hits, {report.cache_misses} misses)"
    )


def main() -> None:
    tasks = sweep_tasks(
        cities=["nyc_like", "chengdu_like", "xian_like"],
        models=["historical_average"],
        slots=[16, 17],
        algorithm="iterative",
        hgrid_budget=256,
        scale=0.005,
        num_days=10,
        seed=7,
    )
    with tempfile.TemporaryDirectory(prefix="gridtuner-sweep-") as cache_dir:
        print(f"Sweeping {len(tasks)} (city, slot) combinations in parallel...")
        report = SweepRunner(tasks, cache_dir=cache_dir, max_workers=4).run()
        print_report(report)

        print("\nRerunning the identical sweep (replayed from the cache)...")
        print_report(SweepRunner(tasks, cache_dir=cache_dir, max_workers=4).run())


if __name__ == "__main__":
    main()
